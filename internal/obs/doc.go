// Package obs is the repo's dependency-free observability layer: a
// metrics registry with a Prometheus text encoder, and a lightweight
// span API for per-stage job timing.
//
// # Metrics
//
// A Registry holds counters, gauges, and fixed-bucket histograms,
// optionally labeled. Metrics register once (by name) and are safe
// for concurrent use; WriteText renders the whole registry in
// Prometheus text exposition format:
//
//	reg := obs.NewRegistry()
//	jobs := reg.Counter("rnuca_jobs_submitted_total", "Jobs accepted.")
//	dur := reg.HistogramVec("rnuca_job_duration_seconds",
//	    "Job wall-clock by kind and outcome.",
//	    obs.DefSecondsBuckets(), "kind", "outcome")
//	jobs.Inc()
//	dur.With("sim", "completed").Observe(1.23)
//	reg.WriteText(w)
//
// Collection hooks (Registry.OnCollect) run under the render lock
// immediately before encoding, so a hook that snapshots several
// related values under one application mutex produces a mutually
// consistent scrape: gauges updated together are rendered together.
// internal/serve uses this to keep its queued/running/submitted
// family free of mid-flight skew.
//
// # Spans
//
// A Trace is a bounded, concurrency-safe span buffer. StartSpan
// reads the Trace from a context and is a no-op (returning a nil
// span whose methods are safe) when none is attached, so library
// code can instrument unconditionally:
//
//	ctx := obs.ContextWithTrace(ctx, obs.NewTrace(0))
//	sp := obs.StartSpan(ctx, "sim.cell")
//	sp.SetAttr("design", "R")
//	defer sp.End()
//
// Ended spans accumulate in the Trace's ring (oldest dropped past
// capacity); Trace.Spans returns them for JSON export and
// Trace.Stages aggregates them into a per-stage wall-clock
// breakdown (rnuca.Result.Timing). The span names used across the
// pipeline are: job.queue, job.run, cache.lookup, replay.setup,
// sim.cell, result.fold, classify.pass, convert.ingest, and
// figure.build.
package obs
