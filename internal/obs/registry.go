package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a process's metrics and renders them in Prometheus
// text exposition format. Metrics register once by name (re-registering
// a name panics: two call sites fighting over one series is a bug) and
// render in registration order, labeled children sorted by label value.
type Registry struct {
	mu     sync.Mutex
	fams   []*family          // guarded by mu
	byName map[string]*family // guarded by mu
	hooks  []func()           // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// family is one named series with all its labeled children ("" keys
// the unlabeled child).
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string

	mu       sync.Mutex
	children map[string]metric // guarded by mu
	order    []string          // guarded by mu
}

type metric interface {
	// write renders the metric's sample lines. labels is the child's
	// rendered label set without braces ("" for the unlabeled child).
	write(w io.Writer, name, labels string) error
}

func (r *Registry) register(name, help string, typ metricType, labels []string) *family {
	if name == "" {
		panic("obs: metric with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	f := &family{name: name, help: help, typ: typ, labels: labels,
		children: map[string]metric{}}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// OnCollect registers a hook run under the render lock at the start of
// every WriteText, before any family is encoded. Hooks that snapshot
// several related values under one application lock keep the rendered
// gauges mutually consistent.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// WriteText renders every registered family in Prometheus text
// exposition format (text/plain; version=0.0.4).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fn := range r.hooks {
		fn()
	}
	for _, f := range r.fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.order) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
		return err
	}
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	for _, k := range keys {
		if err := f.children[k].write(w, f.name, k); err != nil {
			return err
		}
	}
	return nil
}

// child returns (creating on first use) the metric for one label-value
// tuple.
func (f *family) child(values []string, mk func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := renderLabels(f.labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	m := mk()
	f.children[key] = m
	f.order = append(f.order, key)
	return m
}

// renderLabels renders a label set as it appears inside the braces of
// a sample line: k1="v1",k2="v2". Empty for no labels.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// sampleLine writes one sample: `name value` unlabeled, or
// `name{labels} value`.
func sampleLine(w io.Writer, name, labels, value string) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s %s\n", name, value)
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
	}
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---- Counter ----

// Counter is a monotonically increasing uint64 metric. The Set method
// exists for snapshot-style collection (an OnCollect hook copying an
// application-owned total); regular call sites use Inc/Add.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the value. Only meaningful from a collection hook
// that mirrors a monotone application counter.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, labels string) error {
	return sampleLine(w, name, labels, strconv.FormatUint(c.v.Load(), 10))
}

// Counter registers (or returns nothing twice — duplicate names panic)
// an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, nil)
	return f.child(nil, func() metric { return new(Counter) }).(*Counter)
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, typeCounter, labels)}
}

// With returns the child counter for one label-value tuple, creating
// it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() metric { return new(Counter) }).(*Counter)
}

// ---- Gauge ----

// Gauge is an int64 metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer, name, labels string) error {
	return sampleLine(w, name, labels, strconv.FormatInt(g.v.Load(), 10))
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, nil)
	return f.child(nil, func() metric { return new(Gauge) }).(*Gauge)
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, typeGauge, labels)}
}

// With returns the child gauge for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() metric { return new(Gauge) }).(*Gauge)
}

// ---- FloatGauge ----

// FloatGauge is a float64 gauge for values an int64 cannot carry —
// latency quantiles in seconds, ratios. Lock-free: the value lives in
// an atomic as its IEEE-754 bits.
type FloatGauge struct{ bits atomic.Uint64 }

// Set overwrites the value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *FloatGauge) write(w io.Writer, name, labels string) error {
	return sampleLine(w, name, labels, formatFloat(g.Value()))
}

// FloatGauge registers an unlabeled float gauge.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	f := r.register(name, help, typeGauge, nil)
	return f.child(nil, func() metric { return new(FloatGauge) }).(*FloatGauge)
}

// FloatGaugeVec is a float-gauge family keyed by label values.
type FloatGaugeVec struct{ f *family }

// FloatGaugeVec registers a labeled float-gauge family.
func (r *Registry) FloatGaugeVec(name, help string, labels ...string) *FloatGaugeVec {
	return &FloatGaugeVec{r.register(name, help, typeGauge, labels)}
}

// With returns the child gauge for one label-value tuple.
func (v *FloatGaugeVec) With(values ...string) *FloatGauge {
	return v.f.child(values, func() metric { return new(FloatGauge) }).(*FloatGauge)
}

// ---- Histogram ----

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds in increasing order; an implicit +Inf bucket catches the
// rest. The zero bucket list is replaced by DefSecondsBuckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // guarded by mu
	counts []uint64  // guarded by mu; len(bounds)+1; last is +Inf
	sum    float64   // guarded by mu
	count  uint64    // guarded by mu
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefSecondsBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not increasing at %v", bounds[i]))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution by monotone linear interpolation inside the bucket
// where the cumulative count crosses the target rank — the
// histogram_quantile estimate. The first bucket interpolates from a
// lower edge of 0 (the layout is for non-negative measurements); a
// rank landing in the +Inf bucket clamps to the highest finite bound.
// Returns NaN when nothing was observed or q is outside [0, 1]. The
// estimate is monotone in q and exact at bucket boundaries; its error
// is bounded by the width of the bucket the quantile falls in.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	rank := q * float64(h.count)
	cum := uint64(0)
	for i, b := range h.bounds {
		prev := cum
		cum += h.counts[i]
		if float64(cum) < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		if h.counts[i] == 0 {
			return lo
		}
		return lo + (b-lo)*(rank-float64(prev))/float64(h.counts[i])
	}
	// The rank lands in the +Inf bucket: the best monotone answer the
	// layout allows is the largest finite bound.
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) write(w io.Writer, name, labels string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		le := renderLabels([]string{"le"}, []string{formatFloat(b)})
		if labels != "" {
			le = labels + "," + le
		}
		if err := sampleLine(w, name+"_bucket", le, strconv.FormatUint(cum, 10)); err != nil {
			return err
		}
	}
	le := `le="+Inf"`
	if labels != "" {
		le = labels + "," + le
	}
	if err := sampleLine(w, name+"_bucket", le, strconv.FormatUint(h.count, 10)); err != nil {
		return err
	}
	if err := sampleLine(w, name+"_sum", labels, formatFloat(h.sum)); err != nil {
		return err
	}
	return sampleLine(w, name+"_count", labels, strconv.FormatUint(h.count, 10))
}

// Histogram registers an unlabeled histogram with the given bucket
// upper bounds (nil means DefSecondsBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, typeHistogram, nil)
	return f.child(nil, func() metric { return newHistogram(buckets) }).(*Histogram)
}

// HistogramVec is a histogram family keyed by label values; every
// child shares the bucket layout.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, typeHistogram, labels), buckets}
}

// With returns the child histogram for one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() metric { return newHistogram(v.buckets) }).(*Histogram)
}

// ExpBuckets returns n bucket upper bounds starting at start and
// multiplying by factor: the standard latency-histogram layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefSecondsBuckets is the default wall-clock layout: 1ms to ~4.5min
// in powers of two — wide enough for both sub-second cache hits and
// multi-minute figure builds.
func DefSecondsBuckets() []float64 {
	return ExpBuckets(0.001, 2, 19)
}
