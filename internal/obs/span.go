package obs

import (
	"context"
	"sync"
	"time"
)

// DefaultTraceSpans bounds a Trace's span ring when NewTrace is given
// no capacity.
const DefaultTraceSpans = 1024

// SpanData is one finished span as exported over JSON.
//
//rnuca:wire
type SpanData struct {
	// Name is the stage name ("sim.cell", "job.queue", ...).
	Name string `json:"name"`
	// Start is the span's wall-clock start.
	Start time.Time `json:"start"`
	// Seconds is the span's duration.
	Seconds float64 `json:"seconds"`
	// Attrs are the span's attributes, if any.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// StageTiming aggregates every span of one name: the per-stage
// wall-clock breakdown a Result's Timing carries.
//
//rnuca:wire
type StageTiming struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
	Count   int     `json:"count"`
}

// Trace is a bounded, concurrency-safe buffer of finished spans.
// Once capacity is reached the oldest spans are dropped (and counted),
// so a long-lived process cannot grow a trace without bound.
type Trace struct {
	mu      sync.Mutex
	cap     int        // set at construction, immutable after
	spans   []SpanData // guarded by mu
	dropped uint64     // guarded by mu
}

// NewTrace returns a trace holding up to capacity spans
// (DefaultTraceSpans when capacity <= 0).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceSpans
	}
	return &Trace{cap: capacity}
}

func (t *Trace) add(s SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.cap {
		drop := len(t.spans) - t.cap + 1
		t.spans = append(t.spans[:0], t.spans[drop:]...)
		t.dropped += uint64(drop)
	}
	t.spans = append(t.spans, s)
}

// Spans returns a copy of the buffered spans in completion order.
func (t *Trace) Spans() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanData(nil), t.spans...)
}

// Dropped returns how many spans the ring has discarded.
func (t *Trace) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Stages aggregates the buffered spans by name, ordered by each
// stage's first completion.
func (t *Trace) Stages() []StageTiming {
	t.mu.Lock()
	defer t.mu.Unlock()
	index := map[string]int{}
	var out []StageTiming
	for _, s := range t.spans {
		i, ok := index[s.Name]
		if !ok {
			i = len(out)
			index[s.Name] = i
			out = append(out, StageTiming{Stage: s.Name})
		}
		out[i].Seconds += s.Seconds
		out[i].Count++
	}
	return out
}

type traceKey struct{}

// ContextWithTrace attaches a trace to a context; spans started under
// the returned context accumulate in it.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if ctx == nil {
		//rnuca:ctx-ok nil-ctx convenience guard; the root exists only to carry the trace value
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// Span is one in-flight stage measurement. A nil *Span (StartSpan
// without a trace in the context) is valid: every method no-ops, so
// instrumentation sites need no guards.
type Span struct {
	t     *Trace
	name  string
	start time.Time

	mu    sync.Mutex
	attrs map[string]string // guarded by mu
	done  bool              // guarded by mu
}

// StartSpan starts a span on the context's trace. Without a trace it
// returns nil, which is safe to use.
func StartSpan(ctx context.Context, name string) *Span {
	t := TraceFrom(ctx)
	if t == nil {
		return nil
	}
	return t.StartSpan(name)
}

// StartSpan starts a span directly on a trace.
func (t *Trace) StartSpan(name string) *Span {
	return &Span{t: t, name: name, start: time.Now()}
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[k] = v
}

// End finishes the span and appends it to its trace. Multiple Ends
// record once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	attrs := s.attrs
	s.mu.Unlock()
	s.t.add(SpanData{
		Name:    s.name,
		Start:   s.start,
		Seconds: time.Since(s.start).Seconds(),
		Attrs:   attrs,
	})
}
