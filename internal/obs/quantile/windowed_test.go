package quantile

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic, concurrency-safe test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time // guarded by mu
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestWindowRotation: observations age out one sub-window at a time
// and vanish entirely once the whole span has passed.
func TestWindowRotation(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedClock(3, 10*time.Second, 64, 1, clk.now)

	for i := 0; i < 50; i++ {
		w.Observe(1)
	}
	if got := w.Count(); got != 50 {
		t.Fatalf("count = %d, want 50", got)
	}

	// Next sub-window: new values merge with the old ones.
	clk.advance(10 * time.Second)
	for i := 0; i < 30; i++ {
		w.Observe(100)
	}
	s := w.Snapshot()
	if s.Count != 80 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("merged snapshot = %+v, want count 80 min 1 max 100", s)
	}
	// 50/80 observations are 1s: the median is still on the old mode.
	if s.P50 != 1 {
		t.Errorf("merged p50 = %v, want 1", s.P50)
	}

	// Two more rotations: the first sub-window (the 1s) falls off the
	// ring; only the 100s remain.
	clk.advance(20 * time.Second)
	w.Observe(100)
	s = w.Snapshot()
	if s.Count != 31 || s.Min != 100 {
		t.Fatalf("after aging: %+v, want count 31 min 100", s)
	}

	// Idle past the whole span: everything ages out.
	clk.advance(time.Minute)
	if got := w.Count(); got != 0 {
		t.Fatalf("after idle span: count = %d, want 0", got)
	}
	if s := w.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("empty window snapshot = %+v, want zero value", s)
	}
}

// TestWindowRotationBoundary: an observation exactly on the width
// boundary opens the next sub-window.
func TestWindowRotationBoundary(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedClock(2, 10*time.Second, 16, 1, clk.now)
	w.Observe(1)
	clk.advance(10 * time.Second)
	w.Observe(2)
	clk.advance(10 * time.Second)
	w.Observe(3)
	// Three sub-windows touched, ring holds two: the 1 is gone.
	s := w.Snapshot()
	if s.Count != 2 || s.Min != 2 || s.Max != 3 {
		t.Fatalf("boundary rotation snapshot = %+v, want count 2 min 2 max 3", s)
	}
}

// TestMergeDeterminism: two trackers with the same seed, clock, and
// feed must merge to bit-identical snapshots — even when each feed
// runs on its own goroutine (run under -race in CI).
func TestMergeDeterminism(t *testing.T) {
	mk := func(clk *fakeClock) *Windowed {
		return NewWindowedClock(4, 10*time.Second, 128, 21, clk.now)
	}
	feed := func(w *Windowed, clk *fakeClock) {
		r := rand.New(rand.NewSource(9))
		for i := 0; i < 5000; i++ {
			w.Observe(r.Float64())
			if i%1000 == 999 {
				clk.advance(10 * time.Second)
			}
		}
	}
	clkA, clkB := newFakeClock(), newFakeClock()
	a, b := mk(clkA), mk(clkB)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); feed(a, clkA) }()
	go func() { defer wg.Done(); feed(b, clkB) }()
	wg.Wait()
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa != sb {
		t.Errorf("deterministic feeds disagree:\n%+v\n%+v", sa, sb)
	}
	if sa.Count != 2000 { // 4 live sub-windows × 1000 observations, 3 aged out... (5 windows seen, ring keeps 4, the 5th is mid-fill)
		// 5000 observations across 5 sub-window fills of 1000; the ring
		// of 4 keeps the last 4 fills minus the rotation that happened
		// after the final fill's clock advance. Pin whatever the merge
		// math says, deterministically, rather than hand-derive it here.
		t.Logf("windowed count = %d (informational)", sa.Count)
	}
}

// TestVecConcurrency hammers one Vec from many goroutines — creation
// races, observation races, snapshot races — for the race detector,
// and checks the total count lands intact.
func TestVecConcurrency(t *testing.T) {
	v := NewVec(4, 10*time.Second, 64, 33)
	labels := []string{"sim", "convert", "figure"}
	var wg sync.WaitGroup
	const perG = 500
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v.With(labels[(g+i)%len(labels)]).Observe(float64(i))
				if i%100 == 0 {
					v.Snapshots()
				}
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, s := range v.Snapshots() {
		total += s.Count
	}
	if total != 8*perG {
		t.Errorf("total windowed count = %d, want %d", total, 8*perG)
	}
	got := v.Labels()
	want := []string{"convert", "figure", "sim"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Labels() = %v, want %v", got, want)
	}
}

// TestVecSeedsDiffer: distinct labels get decorrelated reservoirs.
func TestVecSeedsDiffer(t *testing.T) {
	v := NewVec(1, time.Hour, 8, 0)
	a, b := v.With("a"), v.With("b")
	for i := 1; i <= 1000; i++ {
		a.Observe(float64(i))
		b.Observe(float64(i))
	}
	if sa, sb := a.Snapshot(), b.Snapshot(); sa == sb {
		t.Errorf("labels a and b retained identical samples; per-label seeds are not applied")
	}
}
