package quantile

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// Default sliding-window shape: 6 sub-windows of 10s give a rolling
// last-minute view that ages out in 10-second steps.
const (
	DefaultWindows = 6
	DefaultWidth   = 10 * time.Second
)

// Windowed tracks quantiles over a sliding window of trailing
// history: N rotating sub-window estimators, merged on every query.
// Observations land in the current sub-window; when the clock crosses
// a width boundary the ring advances and the oldest sub-window is
// discarded, so the merged view always spans at most N×width. Safe
// for concurrent use.
type Windowed struct {
	windows int
	width   time.Duration
	cap     int
	seed    int64
	now     func() time.Time

	mu        sync.Mutex
	wins      []*Estimator // guarded by mu; ring, wins[cur] is live
	cur       int          // guarded by mu
	curStart  time.Time    // guarded by mu
	rotations int64        // guarded by mu; seeds fresh sub-windows
	started   bool         // guarded by mu
}

// NewWindowed returns a sliding-window tracker of `windows` rotating
// sub-windows, each `width` wide, each retaining at most sampleCap
// samples (0s mean the Default* values). The tracker is deterministic
// given the seed, the observation sequence, and the rotation points.
func NewWindowed(windows int, width time.Duration, sampleCap int, seed int64) *Windowed {
	return NewWindowedClock(windows, width, sampleCap, seed, time.Now)
}

// NewWindowedClock is NewWindowed with an injected clock — the test
// hook that makes rotation reproducible.
func NewWindowedClock(windows int, width time.Duration, sampleCap int, seed int64, now func() time.Time) *Windowed {
	if windows < 0 || width < 0 {
		panic(fmt.Sprintf("quantile: NewWindowed(%d, %v): negative shape", windows, width))
	}
	if windows == 0 {
		windows = DefaultWindows
	}
	if width == 0 {
		width = DefaultWidth
	}
	if sampleCap == 0 {
		sampleCap = DefaultCap
	}
	return &Windowed{
		windows: windows,
		width:   width,
		cap:     sampleCap,
		seed:    seed,
		now:     now,
		wins:    make([]*Estimator, windows),
	}
}

// Span returns the window's total trailing coverage (windows×width).
func (w *Windowed) Span() time.Duration {
	return time.Duration(w.windows) * w.width
}

// rotateLocked advances the ring so that wins[cur] covers the sub-window
// containing t. Callers hold w.mu.
func (w *Windowed) rotateLocked(t time.Time) {
	if !w.started {
		w.started = true
		w.curStart = t
		w.wins[w.cur] = New(w.cap, w.subSeedLocked())
		return
	}
	elapsed := t.Sub(w.curStart)
	if elapsed < w.width {
		return
	}
	steps := int64(elapsed / w.width)
	if steps >= int64(w.windows) {
		// The whole window aged out (an idle tracker): drop everything
		// in one move instead of stepping rotation-by-rotation.
		for i := range w.wins {
			w.wins[i] = nil
		}
		w.rotations += steps
		w.cur = 0
		w.curStart = w.curStart.Add(w.width * time.Duration(steps))
		w.wins[w.cur] = New(w.cap, w.subSeedLocked())
		return
	}
	for i := int64(0); i < steps; i++ {
		w.cur = (w.cur + 1) % w.windows
		w.rotations++
		w.wins[w.cur] = New(w.cap, w.subSeedLocked())
	}
	w.curStart = w.curStart.Add(w.width * time.Duration(steps))
}

// subSeedLocked derives the live sub-window's estimator seed from the base
// seed and the rotation ordinal, so every sub-window samples
// independently yet reproducibly. Callers hold w.mu.
func (w *Windowed) subSeedLocked() int64 {
	return w.seed + w.rotations + 1
}

// Observe records one value into the current sub-window.
func (w *Windowed) Observe(v float64) {
	t := w.now()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotateLocked(t)
	w.wins[w.cur].Observe(v)
}

// mergedLocked collects the live sub-windows' weighted samples and exact
// aggregates. Callers hold w.mu.
func (w *Windowed) mergedLocked() (samples []weightedSample, n uint64, sum, min, max float64) {
	first := true
	for _, e := range w.wins {
		if e == nil || e.Count() == 0 {
			continue
		}
		samples = e.weighted(samples)
		n += e.Count()
		sum += e.Sum()
		if first || e.Min() < min {
			min = e.Min()
		}
		if first || e.Max() > max {
			max = e.Max()
		}
		first = false
	}
	return samples, n, sum, min, max
}

// Snapshot merges every live sub-window into one quantile summary of
// the sliding window.
func (w *Windowed) Snapshot() Snapshot {
	t := w.now()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotateLocked(t)
	return snapshotOf(w.mergedLocked())
}

// FractionBelow estimates the fraction of windowed observations at or
// below x — SLO attainment when x is the target. An empty window
// reports 1 (nothing violated the threshold).
func (w *Windowed) FractionBelow(x float64) float64 {
	t := w.now()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotateLocked(t)
	samples, _, _, _, _ := w.mergedLocked()
	return fractionBelow(samples, x)
}

// Count returns the number of observations inside the window.
func (w *Windowed) Count() uint64 {
	t := w.now()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotateLocked(t)
	_, n, _, _, _ := w.mergedLocked()
	return n
}

// Vec keys independent Windowed trackers by one label value (a job
// kind, an HTTP route), creating each on first use. Labels get
// decorrelated but deterministic seeds derived from the base seed and
// the label text. Safe for concurrent use.
type Vec struct {
	windows int
	width   time.Duration
	cap     int
	seed    int64
	now     func() time.Time

	mu sync.Mutex
	m  map[string]*Windowed // guarded by mu
}

// NewVec returns a label-keyed family of sliding-window trackers; the
// shape parameters follow NewWindowed.
func NewVec(windows int, width time.Duration, sampleCap int, seed int64) *Vec {
	return NewVecClock(windows, width, sampleCap, seed, time.Now)
}

// NewVecClock is NewVec with an injected clock.
func NewVecClock(windows int, width time.Duration, sampleCap int, seed int64, now func() time.Time) *Vec {
	return &Vec{
		windows: windows, width: width, cap: sampleCap, seed: seed,
		now: now,
		m:   map[string]*Windowed{},
	}
}

// With returns the tracker for one label value, creating it on first
// use.
func (v *Vec) With(label string) *Windowed {
	v.mu.Lock()
	defer v.mu.Unlock()
	if w, ok := v.m[label]; ok {
		return w
	}
	h := fnv.New64a()
	h.Write([]byte(label))
	w := NewWindowedClock(v.windows, v.width, v.cap, v.seed+int64(h.Sum64()), v.now)
	v.m[label] = w
	return w
}

// Labels returns the known label values, sorted.
func (v *Vec) Labels() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.m))
	for k := range v.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshots returns a label→Snapshot map over every known tracker,
// omitting labels whose windows are currently empty.
func (v *Vec) Snapshots() map[string]Snapshot {
	out := map[string]Snapshot{}
	for _, label := range v.Labels() {
		s := v.With(label).Snapshot()
		if s.Count == 0 {
			continue
		}
		out[label] = s
	}
	return out
}
