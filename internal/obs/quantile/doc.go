// Package quantile provides deterministic, bounded-memory streaming
// quantile estimation for the serving tier's latency intelligence:
// per-kind job latency, queue wait, and per-endpoint HTTP latency all
// flow through it, and rnuca-load reuses it client-side so both ends
// of a load test measure with the same estimator.
//
// # Estimator
//
// Estimator is a fixed-capacity reservoir sampler (Vitter's
// algorithm R) over one observation stream. The reservoir is driven
// by an explicitly seeded *rand.Rand, so the retained sample — and
// therefore every reported quantile — is a pure function of
// (seed, observation sequence): two estimators fed the same values in
// the same order report bit-identical quantiles, which keeps the
// repo's determinism discipline intact and makes goldens possible.
// Count, sum, min, and max are tracked exactly outside the reservoir,
// so Max is never a sampling casualty. Memory is O(capacity)
// regardless of stream length.
//
// Quantiles are weighted order statistics over the retained sample:
// with capacity k, the rank error of an estimated quantile q
// concentrates around sqrt(q(1-q)/k) (about ±1.6 rank points at the
// median for k = 1024). The fixed-bucket obs.Histogram.Quantile is
// the natural cross-check: the two agree to within the histogram's
// bucket resolution (tested).
//
// # Windowed
//
// Windowed wraps N rotating sub-window estimators under one mutex:
// observations land in the current sub-window, sub-windows rotate as
// the clock crosses fixed width boundaries, and a query merges every
// live sub-window by weighting each retained sample with its
// sub-window's observed-to-retained ratio. The result is a sliding
// window of N×width trailing history whose oldest data ages out a
// sub-window at a time — the shape a latency-driven replication
// controller wants to consume (ROADMAP item 1). Each rotation reseeds
// the fresh sub-window deterministically from the base seed and the
// rotation ordinal.
//
// Snapshot reports count/mean/min/max plus p50/p90/p95/p99 for the
// merged window; FractionBelow reports the estimated fraction of
// windowed observations at or below a threshold — SLO attainment when
// the threshold is the SLO target. Empty windows report zeros, never
// NaN, so snapshots always marshal as JSON.
//
// # Vec
//
// Vec keys independent Windowed trackers by a single label string
// (job kind, HTTP route), creating them on first use — the labeled
// front the serve layer registers its trackers behind.
package quantile
