package quantile

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// DefaultCap is the reservoir capacity used when a constructor is
// given 0: large enough for ~±1.6 rank-point error at the median,
// small enough that a tracker per job kind and HTTP route stays
// trivially cheap.
const DefaultCap = 1024

// Estimator is a bounded-memory streaming quantile estimator over one
// observation stream: a fixed-capacity reservoir (algorithm R) driven
// by an explicitly seeded PRNG, plus exact count/sum/min/max. It is
// deterministic — the retained sample is a pure function of the seed
// and the observation sequence — and is not safe for concurrent use
// (Windowed adds the lock).
type Estimator struct {
	rng     *rand.Rand
	n       uint64
	sum     float64
	min     float64
	max     float64
	samples []float64
}

// New returns an estimator retaining at most cap samples (0 means
// DefaultCap), seeded deterministically.
func New(cap int, seed int64) *Estimator {
	if cap < 0 {
		panic(fmt.Sprintf("quantile: New(%d): negative capacity", cap))
	}
	if cap == 0 {
		cap = DefaultCap
	}
	return &Estimator{
		rng:     rand.New(rand.NewSource(seed)),
		samples: make([]float64, 0, cap),
	}
}

// Observe records one value.
func (e *Estimator) Observe(v float64) {
	if e.n == 0 || v < e.min {
		e.min = v
	}
	if e.n == 0 || v > e.max {
		e.max = v
	}
	e.n++
	e.sum += v
	if len(e.samples) < cap(e.samples) {
		e.samples = append(e.samples, v)
		return
	}
	// Algorithm R: the i-th observation (1-based) replaces a random
	// reservoir slot with probability cap/i.
	if j := e.rng.Int63n(int64(e.n)); j < int64(cap(e.samples)) {
		e.samples[j] = v
	}
}

// Count returns the number of observations.
func (e *Estimator) Count() uint64 { return e.n }

// Sum returns the exact sum of all observations.
func (e *Estimator) Sum() float64 { return e.sum }

// Min returns the exact minimum (0 if nothing was observed).
func (e *Estimator) Min() float64 {
	if e.n == 0 {
		return 0
	}
	return e.min
}

// Max returns the exact maximum (0 if nothing was observed).
func (e *Estimator) Max() float64 {
	if e.n == 0 {
		return 0
	}
	return e.max
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// stream from the retained sample. Empty estimators report 0.
func (e *Estimator) Quantile(q float64) float64 {
	return mergedQuantile(e.weighted(nil), q)
}

// weighted appends the estimator's retained samples to dst, each
// carrying weight n/len(samples) so sub-streams of different sizes
// merge fairly.
func (e *Estimator) weighted(dst []weightedSample) []weightedSample {
	if len(e.samples) == 0 {
		return dst
	}
	w := float64(e.n) / float64(len(e.samples))
	for _, v := range e.samples {
		dst = append(dst, weightedSample{v: v, w: w})
	}
	return dst
}

// weightedSample is one retained observation with the stream weight it
// stands in for.
type weightedSample struct{ v, w float64 }

// mergedQuantile computes the weighted q-quantile of a merged sample
// set: sort by value, then take the first sample whose cumulative
// weight reaches q of the total. Deterministic (sort is stable on the
// values themselves) and 0 on an empty set.
func mergedQuantile(samples []weightedSample, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].v < samples[j].v })
	var total float64
	for _, s := range samples {
		total += s.w
	}
	target := q * total
	cum := 0.0
	for _, s := range samples {
		cum += s.w
		if cum >= target {
			return s.v
		}
	}
	return samples[len(samples)-1].v
}

// fractionBelow estimates the fraction of the merged stream at or
// below x (1 for an empty set: no observation violates a threshold).
func fractionBelow(samples []weightedSample, x float64) float64 {
	if len(samples) == 0 {
		return 1
	}
	var total, below float64
	for _, s := range samples {
		total += s.w
		if s.v <= x {
			below += s.w
		}
	}
	if total == 0 {
		return 1
	}
	return below / total
}

// Snapshot is a point-in-time quantile summary. Zero-valued when
// nothing was observed; never NaN, so it always marshals as JSON.
type Snapshot struct {
	Count uint64
	Mean  float64
	Min   float64
	Max   float64
	P50   float64
	P90   float64
	P95   float64
	P99   float64
}

// snapshotOf summarizes a merged sample set with exact count/sum/
// min/max supplied by the caller.
func snapshotOf(samples []weightedSample, n uint64, sum, min, max float64) Snapshot {
	s := Snapshot{Count: n, Min: min, Max: max}
	if n == 0 {
		return s
	}
	s.Mean = sum / float64(n)
	s.P50 = mergedQuantile(samples, 0.50)
	s.P90 = mergedQuantile(samples, 0.90)
	s.P95 = mergedQuantile(samples, 0.95)
	s.P99 = mergedQuantile(samples, 0.99)
	if math.IsNaN(s.Mean) || math.IsInf(s.Mean, 0) {
		s.Mean = 0
	}
	return s
}

// Snapshot summarizes the estimator's whole stream.
func (e *Estimator) Snapshot() Snapshot {
	return snapshotOf(e.weighted(nil), e.n, e.sum, e.Min(), e.Max())
}
