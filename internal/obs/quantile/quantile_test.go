package quantile

import (
	"math"
	"math/rand"
	"testing"

	"rnuca/internal/obs"
)

// TestExactUnderCap: while the stream fits the reservoir the
// estimator is exact — quantiles are order statistics of the data.
func TestExactUnderCap(t *testing.T) {
	e := New(128, 1)
	for i := 1; i <= 100; i++ {
		e.Observe(float64(i))
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0, 1}, {0.5, 50}, {0.9, 90}, {0.99, 99}, {1, 100}} {
		if got := e.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if e.Count() != 100 || e.Sum() != 5050 || e.Min() != 1 || e.Max() != 100 {
		t.Errorf("aggregates: count %d sum %v min %v max %v",
			e.Count(), e.Sum(), e.Min(), e.Max())
	}
}

// TestAdversarialStreams: sorted, reversed, constant, and bimodal
// streams must all land within sampling tolerance of the true
// quantiles — orderings that break naive streaming estimators.
func TestAdversarialStreams(t *testing.T) {
	const n = 50000
	feed := map[string]func(e *Estimator){
		"sorted": func(e *Estimator) {
			for i := 0; i < n; i++ {
				e.Observe(float64(i))
			}
		},
		"reversed": func(e *Estimator) {
			for i := n - 1; i >= 0; i-- {
				e.Observe(float64(i))
			}
		},
	}
	for name, fn := range feed {
		t.Run(name, func(t *testing.T) {
			e := New(1024, 7)
			fn(e)
			// Rank error of a k-sample reservoir concentrates around
			// sqrt(q(1-q)/k): allow 5 sigma, ~8% of n at the median.
			for _, q := range []float64{0.5, 0.9, 0.99} {
				want := q * n
				tol := 5 * math.Sqrt(q*(1-q)/1024) * n
				if got := e.Quantile(q); math.Abs(got-want) > tol {
					t.Errorf("Quantile(%v) = %v, want %v ± %v", q, got, want, tol)
				}
			}
			if e.Max() != n-1 || e.Min() != 0 {
				t.Errorf("min/max = %v/%v, want 0/%v (exact)", e.Min(), e.Max(), n-1)
			}
		})
	}

	t.Run("constant", func(t *testing.T) {
		e := New(64, 3)
		for i := 0; i < n; i++ {
			e.Observe(42)
		}
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := e.Quantile(q); got != 42 {
				t.Errorf("Quantile(%v) = %v, want 42", q, got)
			}
		}
	})

	t.Run("bimodal", func(t *testing.T) {
		// 90% at 1ms, 10% at 1s, interleaved deterministically: p50
		// must sit on the low mode, p99 on the high one.
		e := New(1024, 11)
		for i := 0; i < n; i++ {
			if i%10 == 9 {
				e.Observe(1.0)
			} else {
				e.Observe(0.001)
			}
		}
		if got := e.Quantile(0.5); got != 0.001 {
			t.Errorf("p50 = %v, want 0.001", got)
		}
		if got := e.Quantile(0.99); got != 1.0 {
			t.Errorf("p99 = %v, want 1.0", got)
		}
	})
}

// TestMaxSurvivesSampling: a single spike must be reported by Max even
// after the reservoir has long since dropped it.
func TestMaxSurvivesSampling(t *testing.T) {
	e := New(16, 5)
	e.Observe(1000) // the spike, observed first, certain to be evicted
	for i := 0; i < 10000; i++ {
		e.Observe(1)
	}
	if e.Max() != 1000 {
		t.Errorf("Max = %v, want 1000 (exact, outside the reservoir)", e.Max())
	}
	if e.Min() != 1 {
		t.Errorf("Min = %v, want 1", e.Min())
	}
}

// TestEstimatorDeterminism: the retained sample is a pure function of
// (seed, sequence) — same feed, same quantiles, bit for bit.
func TestEstimatorDeterminism(t *testing.T) {
	run := func() Snapshot {
		e := New(64, 99)
		r := rand.New(rand.NewSource(4))
		for i := 0; i < 20000; i++ {
			e.Observe(r.Float64())
		}
		return e.Snapshot()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed and stream disagree:\n%+v\n%+v", a, b)
	}
	// A different seed retains a different sample (sanity that the
	// seed actually reaches the reservoir).
	e := New(64, 100)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		e.Observe(r.Float64())
	}
	if c := e.Snapshot(); c == a {
		t.Errorf("different seeds produced identical reservoirs (seed unused?)")
	}
}

// TestGolden pins a fixed-seed snapshot: any change to the sampling
// or merge arithmetic shows up as a golden break, not a silent drift.
func TestGolden(t *testing.T) {
	e := New(8, 42)
	for i := 1; i <= 100; i++ {
		e.Observe(float64(i))
	}
	got := e.Snapshot()
	want := Snapshot{Count: 100, Mean: 50.5, Min: 1, Max: 100,
		P50: goldenP50, P90: goldenP90, P95: goldenP95, P99: goldenP99}
	if got != want {
		t.Errorf("golden snapshot drifted:\ngot  %+v\nwant %+v", got, want)
	}
}

// The pinned reservoir quantiles for New(8, 42) fed 1..100. With only
// 8 retained samples these are coarse — the point is that they are
// reproducible, not that they are accurate.
const (
	goldenP50 = 52.0
	goldenP90 = 93.0
	goldenP95 = 93.0
	goldenP99 = 93.0
)

// TestFractionBelow covers the SLO-attainment primitive.
func TestFractionBelow(t *testing.T) {
	// Capacity above the stream size keeps the reservoir exact, so the
	// fractions below are precise, not estimates.
	w := NewWindowed(4, DefaultWidth, 128, 1)
	if got := w.FractionBelow(1); got != 1 {
		t.Errorf("empty window FractionBelow = %v, want 1", got)
	}
	for i := 0; i < 90; i++ {
		w.Observe(0.010)
	}
	for i := 0; i < 10; i++ {
		w.Observe(0.500)
	}
	if got := w.FractionBelow(0.1); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("FractionBelow(0.1) = %v, want 0.9", got)
	}
	if got := w.FractionBelow(0.001); got != 0 {
		t.Errorf("FractionBelow(0.001) = %v, want 0", got)
	}
	if got := w.FractionBelow(1); got != 1 {
		t.Errorf("FractionBelow(1) = %v, want 1", got)
	}
}

// TestCrossCheckHistogram: the streaming estimator and the
// fixed-bucket histogram interpolation must agree to within one
// power-of-two bucket on the same stream — two independent
// implementations checking each other.
func TestCrossCheckHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("rnuca_crosscheck_seconds", "", obs.DefSecondsBuckets())
	e := New(2048, 17)
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 30000; i++ {
		// Log-uniform latencies across 1ms..1s, the realistic shape.
		v := math.Pow(10, -3+3*r.Float64())
		h.Observe(v)
		e.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		he, ee := h.Quantile(q), e.Quantile(q)
		if he <= 0 || ee <= 0 {
			t.Fatalf("q=%v: non-positive estimates hist=%v est=%v", q, he, ee)
		}
		if d := math.Abs(math.Log2(he) - math.Log2(ee)); d > 1.1 {
			t.Errorf("q=%v: hist %v vs estimator %v disagree by %.2f buckets", q, he, ee, d)
		}
	}
}
