package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// The golden test freezes the text exposition format: every consumer
// (serve's /metrics scrape, the tests that parse it by line prefix)
// depends on this exact shape.
func TestWriteTextGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("jobs_total", "Jobs seen.")
	c.Add(3)
	g := reg.Gauge("queue_depth", "Jobs queued.")
	g.Set(-2)
	v := reg.CounterVec("cache_ops_total", "Cache operations.", "op")
	v.With("hit").Add(5)
	v.With("miss").Inc()
	h := reg.Histogram("latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(7)
	hv := reg.HistogramVec("wait_seconds", "Wait.", []float64{1}, "kind")
	hv.With("sim").Observe(0.25)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jobs_total Jobs seen.
# TYPE jobs_total counter
jobs_total 3
# HELP queue_depth Jobs queued.
# TYPE queue_depth gauge
queue_depth -2
# HELP cache_ops_total Cache operations.
# TYPE cache_ops_total counter
cache_ops_total{op="hit"} 5
cache_ops_total{op="miss"} 1
# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 7.55
latency_seconds_count 3
# HELP wait_seconds Wait.
# TYPE wait_seconds histogram
wait_seconds_bucket{kind="sim",le="1"} 1
wait_seconds_bucket{kind="sim",le="+Inf"} 1
wait_seconds_sum{kind="sim"} 0.25
wait_seconds_count{kind="sim"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("encoding drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// A family with no children yet (a vec nobody touched) renders
// nothing — no dangling TYPE headers.
func TestWriteTextSkipsEmptyFamilies(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("unused_total", "Never incremented.", "kind")
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty vec rendered %q", b.String())
	}
}

// Histogram boundaries follow Prometheus le semantics: an observation
// equal to a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4, 4.5} {
		h.Observe(v)
	}
	// raw (non-cumulative) counts per bucket: le=1, le=2, le=4, +Inf
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if h.counts[i] != w {
			t.Fatalf("bucket %d count = %d, want %d (all %v)", i, h.counts[i], w, h.counts)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 13 || got > 13.001 {
		t.Fatalf("sum = %v", got)
	}
}

func TestHistogramRejectsUnsortedBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted buckets must panic")
		}
	}()
	newHistogram([]float64{1, 1})
}

func TestDuplicateNamePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	reg.Gauge("x_total", "")
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("esc_total", "", "p").With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{p="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("got %q, want line %q", b.String(), want)
	}
}

// OnCollect hooks run before encoding, under the render lock, so a
// hook-maintained family is consistent within one scrape.
func TestOnCollectRunsBeforeRender(t *testing.T) {
	reg := NewRegistry()
	a := reg.Gauge("a", "")
	b := reg.Gauge("b", "")
	n := int64(0)
	reg.OnCollect(func() {
		n++
		a.Set(n)
		b.Set(-n)
	})
	var out strings.Builder
	if err := reg.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "a 1\n") || !strings.Contains(out.String(), "b -1\n") {
		t.Fatalf("hook did not run before render:\n%s", out.String())
	}
}

// ExpBuckets is the layout constructor everything uses; pin its shape.
func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	if b := DefSecondsBuckets(); len(b) != 19 || b[0] != 0.001 {
		t.Fatalf("default layout drifted: %v", b)
	}
}

// Metrics are safe for concurrent use with rendering (backed by the
// race detector in CI).
func TestConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n_total", "")
	h := reg.HistogramVec("h_seconds", "", []float64{1}, "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				h.With("a").Observe(float64(j))
				if j%100 == 0 {
					var b strings.Builder
					_ = reg.WriteText(&b)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8*500 {
		t.Fatalf("count = %d", c.Value())
	}
}

// TestHistogramQuantile pins the monotone-interpolation arithmetic on
// a hand-checkable layout.
func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_seconds", "", []float64{1, 2, 4})

	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatalf("empty histogram Quantile = %v, want NaN", h.Quantile(0.5))
	}

	// Four observations in the (1, 2] bucket: rank q*4 interpolates
	// linearly across that bucket.
	for i := 0; i < 4; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got != 1.5 {
		t.Errorf("Quantile(0.5) = %v, want 1.5", got)
	}
	if got := h.Quantile(0.25); got != 1.25 {
		t.Errorf("Quantile(0.25) = %v, want 1.25", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Errorf("Quantile(1) = %v, want 2 (bucket upper bound)", got)
	}

	// First bucket interpolates from a lower edge of 0.
	h2 := reg.Histogram("q2_seconds", "", []float64{1, 2})
	h2.Observe(0.5)
	h2.Observe(0.5)
	if got := h2.Quantile(0.5); got != 0.5 {
		t.Errorf("first-bucket Quantile(0.5) = %v, want 0.5", got)
	}

	// A rank in the +Inf bucket clamps to the largest finite bound.
	h3 := reg.Histogram("q3_seconds", "", []float64{1, 2})
	h3.Observe(100)
	if got := h3.Quantile(0.99); got != 2 {
		t.Errorf("+Inf-bucket Quantile = %v, want 2", got)
	}

	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(h.Quantile(bad)) {
			t.Errorf("Quantile(%v) = %v, want NaN", bad, h.Quantile(bad))
		}
	}
}

// TestHistogramQuantileAccuracyAndMonotonicity: on a uniform stream
// the estimate stays within one bucket of truth and never decreases
// in q.
func TestHistogramQuantileAccuracyAndMonotonicity(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("qa_seconds", "", DefSecondsBuckets())
	// Uniform over (0, 1]: true q-quantile is q.
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i) / n)
	}
	prev := math.Inf(-1)
	for q := 0.05; q <= 0.99; q += 0.01 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile not monotone: Quantile(%v) = %v < %v", q, got, prev)
		}
		prev = got
		// Power-of-two buckets: the estimate must sit within the bucket
		// holding the true quantile, i.e. within a factor of 2.
		if got < q/2 || got > 2*q {
			t.Errorf("Quantile(%.2f) = %v, outside [%v, %v]", q, got, q/2, 2*q)
		}
	}
}

// TestFloatGauge covers the float-valued gauge and its rendering.
func TestFloatGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.FloatGauge("lat_seconds", "A float level.")
	g.Set(0.125)
	if g.Value() != 0.125 {
		t.Fatalf("Value = %v", g.Value())
	}
	v := reg.FloatGaugeVec("latv_seconds", "Labeled float levels.", "kind", "q")
	v.With("sim", "p99").Set(0.25)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds gauge",
		"lat_seconds 0.125",
		`latv_seconds{kind="sim",q="p99"} 0.25`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
