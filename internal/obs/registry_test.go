package obs

import (
	"strings"
	"sync"
	"testing"
)

// The golden test freezes the text exposition format: every consumer
// (serve's /metrics scrape, the tests that parse it by line prefix)
// depends on this exact shape.
func TestWriteTextGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("jobs_total", "Jobs seen.")
	c.Add(3)
	g := reg.Gauge("queue_depth", "Jobs queued.")
	g.Set(-2)
	v := reg.CounterVec("cache_ops_total", "Cache operations.", "op")
	v.With("hit").Add(5)
	v.With("miss").Inc()
	h := reg.Histogram("latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(7)
	hv := reg.HistogramVec("wait_seconds", "Wait.", []float64{1}, "kind")
	hv.With("sim").Observe(0.25)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jobs_total Jobs seen.
# TYPE jobs_total counter
jobs_total 3
# HELP queue_depth Jobs queued.
# TYPE queue_depth gauge
queue_depth -2
# HELP cache_ops_total Cache operations.
# TYPE cache_ops_total counter
cache_ops_total{op="hit"} 5
cache_ops_total{op="miss"} 1
# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 7.55
latency_seconds_count 3
# HELP wait_seconds Wait.
# TYPE wait_seconds histogram
wait_seconds_bucket{kind="sim",le="1"} 1
wait_seconds_bucket{kind="sim",le="+Inf"} 1
wait_seconds_sum{kind="sim"} 0.25
wait_seconds_count{kind="sim"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("encoding drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// A family with no children yet (a vec nobody touched) renders
// nothing — no dangling TYPE headers.
func TestWriteTextSkipsEmptyFamilies(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("unused_total", "Never incremented.", "kind")
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty vec rendered %q", b.String())
	}
}

// Histogram boundaries follow Prometheus le semantics: an observation
// equal to a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4, 4.5} {
		h.Observe(v)
	}
	// raw (non-cumulative) counts per bucket: le=1, le=2, le=4, +Inf
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if h.counts[i] != w {
			t.Fatalf("bucket %d count = %d, want %d (all %v)", i, h.counts[i], w, h.counts)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 13 || got > 13.001 {
		t.Fatalf("sum = %v", got)
	}
}

func TestHistogramRejectsUnsortedBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted buckets must panic")
		}
	}()
	newHistogram([]float64{1, 1})
}

func TestDuplicateNamePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	reg.Gauge("x_total", "")
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("esc_total", "", "p").With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{p="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("got %q, want line %q", b.String(), want)
	}
}

// OnCollect hooks run before encoding, under the render lock, so a
// hook-maintained family is consistent within one scrape.
func TestOnCollectRunsBeforeRender(t *testing.T) {
	reg := NewRegistry()
	a := reg.Gauge("a", "")
	b := reg.Gauge("b", "")
	n := int64(0)
	reg.OnCollect(func() {
		n++
		a.Set(n)
		b.Set(-n)
	})
	var out strings.Builder
	if err := reg.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "a 1\n") || !strings.Contains(out.String(), "b -1\n") {
		t.Fatalf("hook did not run before render:\n%s", out.String())
	}
}

// ExpBuckets is the layout constructor everything uses; pin its shape.
func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	if b := DefSecondsBuckets(); len(b) != 19 || b[0] != 0.001 {
		t.Fatalf("default layout drifted: %v", b)
	}
}

// Metrics are safe for concurrent use with rendering (backed by the
// race detector in CI).
func TestConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n_total", "")
	h := reg.HistogramVec("h_seconds", "", []float64{1}, "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				h.With("a").Observe(float64(j))
				if j%100 == 0 {
					var b strings.Builder
					_ = reg.WriteText(&b)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8*500 {
		t.Fatalf("count = %d", c.Value())
	}
}
