// Package flight is the simulator's flight recorder: a deterministic,
// zero-perturbation timeline of per-epoch simulation state.
//
// # Contract
//
// The engine drives the recorder at a fixed epoch boundary — every
// Config.Every *measured* references (default 64Ki) — by handing it a
// cumulative Sample of counters it was accumulating anyway. Like the
// engine's Progress hook, the recorder observes the simulation and can
// never steer it: nothing the recorder computes feeds back into timing,
// placement, or Result counters, so a run with the recorder enabled is
// bit-identical to one without it, and two identical runs produce
// byte-identical timelines.
//
// # Epochs
//
// Each stored Epoch is the delta between two consecutive cumulative
// Samples: per-core cycles and instructions (CPI), per-class accesses
// and off-chip misses, OS-page classification transitions, per-bank
// (L2 slice) access pressure, and per-NoC-link flit counts. Epochs are
// appended to a bounded ring; when the ring would exceed Config.Cap,
// adjacent epochs are merged 2→1 (sums; ref ranges concatenate) and the
// epoch granularity doubles, so memory stays O(Cap) regardless of run
// length. The merge is pure integer arithmetic over deterministic
// counters, so downsampling is itself deterministic.
//
// # Wiring
//
// The engine owns the only goroutine that touches a Recorder during a
// run; Timeline() is called after Run returns. Config.OnEpoch, when
// set, is invoked synchronously at each base-epoch boundary (before any
// downsampling) so a serving layer can stream live epoch samples; the
// callback must do its own locking if it publishes the epoch elsewhere.
package flight
