package flight

import (
	"encoding/json"
	"fmt"
	"testing"
)

// synthSample builds a deterministic cumulative sample for base epoch
// n (1-based): every counter is a simple monotone function of n, so
// deltas are predictable.
func synthSample(n int) Sample {
	u := uint64(n)
	s := Sample{
		Refs:       u * 100,
		CoreCycles: []float64{float64(u) * 10, float64(u) * 20},
		CoreInstrs: []uint64{u * 50, u * 40},
		Transitions: Transitions{
			FirstTouches:    u * 3,
			PrivateToShared: u,
			Migrations:      u * 2,
			TLBShootdowns:   u * 4,
		},
		BankAccesses: []uint64{u * 7, u * 9},
		LinkFlits:    []uint64{u * 5},
	}
	for c := 0; c < NumClasses; c++ {
		s.ClassAccesses[c] = u * uint64(c+1)
		s.ClassMisses[c] = u * uint64(c)
	}
	return s
}

func TestRecorderDeltaEncoding(t *testing.T) {
	r := NewRecorder(Config{Every: 100, Cap: 16})
	for n := 1; n <= 3; n++ {
		r.Observe(synthSample(n))
	}
	tl := r.Timeline()
	if tl.BaseEpochs != 3 || len(tl.Epochs) != 3 || tl.Scale != 1 {
		t.Fatalf("got %d base epochs, %d stored, scale %d", tl.BaseEpochs, len(tl.Epochs), tl.Scale)
	}
	for i, e := range tl.Epochs {
		if e.Index != i || e.Epochs != 1 {
			t.Errorf("epoch %d: index %d epochs %d", i, e.Index, e.Epochs)
		}
		if e.StartRef != uint64(i)*100 || e.EndRef != uint64(i+1)*100 {
			t.Errorf("epoch %d: range [%d,%d)", i, e.StartRef, e.EndRef)
		}
		// Every delta of the synthetic monotone counters is constant.
		if e.CoreCycles[0] != 10 || e.CoreCycles[1] != 20 {
			t.Errorf("epoch %d: core cycles %v", i, e.CoreCycles)
		}
		if e.CoreInstrs[0] != 50 || e.CoreInstrs[1] != 40 {
			t.Errorf("epoch %d: core instrs %v", i, e.CoreInstrs)
		}
		if e.Transitions.Migrations != 2 || e.Transitions.TLBShootdowns != 4 {
			t.Errorf("epoch %d: transitions %+v", i, e.Transitions)
		}
		if e.BankAccesses[0] != 7 || e.BankAccesses[1] != 9 {
			t.Errorf("epoch %d: banks %v", i, e.BankAccesses)
		}
		if e.LinkFlits[0] != 5 {
			t.Errorf("epoch %d: links %v", i, e.LinkFlits)
		}
		if e.ClassAccesses != [NumClasses]uint64{1, 2, 3, 4} {
			t.Errorf("epoch %d: class accesses %v", i, e.ClassAccesses)
		}
	}
	if e := tl.Epochs[0]; e.CPI(0) != 10.0/50 || e.CPI(1) != 20.0/40 {
		t.Errorf("CPI = %v, %v", e.CPI(0), e.CPI(1))
	}
}

func TestRecorderBaselineExcludesWarmup(t *testing.T) {
	r := NewRecorder(Config{Every: 100})
	warm := Sample{Refs: 0, BankAccesses: []uint64{1000, 1000}, LinkFlits: []uint64{500}}
	warm.Transitions.FirstTouches = 77
	r.Baseline(warm)
	s := synthSample(1)
	s.BankAccesses = []uint64{1007, 1009}
	s.LinkFlits = []uint64{505}
	s.Transitions.FirstTouches = 80
	r.Observe(s)
	e := r.Timeline().Epochs[0]
	if e.BankAccesses[0] != 7 || e.BankAccesses[1] != 9 {
		t.Errorf("warmup bank accesses leaked into epoch 0: %v", e.BankAccesses)
	}
	if e.LinkFlits[0] != 5 {
		t.Errorf("warmup link flits leaked into epoch 0: %v", e.LinkFlits)
	}
	if e.Transitions.FirstTouches != 3 {
		t.Errorf("warmup transitions leaked into epoch 0: %+v", e.Transitions)
	}
}

func TestRecorderZeroAdvanceFlushIgnored(t *testing.T) {
	r := NewRecorder(Config{Every: 100})
	r.Observe(synthSample(1))
	r.Observe(synthSample(1)) // end-of-run flush on the boundary
	if got := r.Timeline(); len(got.Epochs) != 1 {
		t.Fatalf("flush on boundary added an epoch: %d", len(got.Epochs))
	}
}

func TestRecorderDownsampleBoundedAndLossless(t *testing.T) {
	const n, cap = 1000, 16
	r := NewRecorder(Config{Every: 100, Cap: cap})
	for i := 1; i <= n; i++ {
		r.Observe(synthSample(i))
	}
	tl := r.Timeline()
	if len(tl.Epochs) > cap {
		t.Fatalf("%d stored epochs exceed cap %d", len(tl.Epochs), cap)
	}
	if tl.BaseEpochs != n {
		t.Fatalf("base epochs %d, want %d", tl.BaseEpochs, n)
	}
	// Downsampling merges, never drops: totals and ranges are exact.
	var base int
	var refs, instrs, migrations uint64
	prevEnd := uint64(0)
	for i, e := range tl.Epochs {
		if e.StartRef != prevEnd {
			t.Fatalf("epoch %d not contiguous: starts %d after %d", i, e.StartRef, prevEnd)
		}
		prevEnd = e.EndRef
		base += e.Epochs
		refs += e.Refs()
		instrs += e.CoreInstrs[0]
		migrations += e.Transitions.Migrations
	}
	if base != n || refs != n*100 || instrs != n*50 || migrations != n*2 {
		t.Errorf("merged totals: base %d refs %d instrs %d migrations %d", base, refs, instrs, migrations)
	}
	if tl.Scale < 2 {
		t.Errorf("scale %d after overflow, want >= 2", tl.Scale)
	}
}

func TestRecorderDownsampleDeterministic(t *testing.T) {
	run := func() []byte {
		r := NewRecorder(Config{Every: 100, Cap: 8})
		for i := 1; i <= 333; i++ {
			r.Observe(synthSample(i))
		}
		r.SetLinks([]string{"0>1"})
		b, err := json.Marshal(r.Timeline())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatal("identical recordings marshal differently")
	}
}

func TestRecorderOnEpochSeesEveryBaseEpoch(t *testing.T) {
	var seen []int
	r := NewRecorder(Config{Every: 100, Cap: 2, OnEpoch: func(e Epoch) {
		if e.Epochs != 1 {
			t.Errorf("live epoch %d already merged (%d)", e.Index, e.Epochs)
		}
		seen = append(seen, e.Index)
	}})
	for i := 1; i <= 10; i++ {
		r.Observe(synthSample(i))
	}
	if len(seen) != 10 {
		t.Fatalf("observer saw %d epochs, want 10: %v", len(seen), seen)
	}
	for i, idx := range seen {
		if idx != i {
			t.Fatalf("observer order: %v", seen)
		}
	}
}

func TestRecorderRaggedLinkLanes(t *testing.T) {
	r := NewRecorder(Config{Every: 100, Cap: 2})
	s1 := synthSample(1)
	s1.LinkFlits = []uint64{5}
	r.Observe(s1)
	s2 := synthSample(2)
	s2.LinkFlits = []uint64{12, 30} // lane 1 appears in epoch 2
	r.Observe(s2)
	s3 := synthSample(3)
	s3.LinkFlits = []uint64{20, 45}
	r.Observe(s3) // overflows cap 2: epochs 1+2 merge
	tl := r.Timeline()
	if len(tl.Epochs) != 2 {
		t.Fatalf("stored %d epochs, want 2", len(tl.Epochs))
	}
	// Merged epoch: lane 0 = 5+7, lane 1 = 0+30 (absent lane is zero).
	if got := tl.Epochs[0].LinkFlits; len(got) != 2 || got[0] != 12 || got[1] != 30 {
		t.Errorf("merged link lanes = %v, want [12 30]", got)
	}
	if got := tl.Epochs[1].LinkFlits; got[0] != 8 || got[1] != 15 {
		t.Errorf("epoch 3 link lanes = %v, want [8 15]", got)
	}
}

func TestTimelineSnapshotIsolated(t *testing.T) {
	r := NewRecorder(Config{Every: 100})
	r.Observe(synthSample(1))
	tl := r.Timeline()
	tl.Epochs[0].CoreCycles[0] = -1
	tl.Epochs[0].BankAccesses[0] = 999
	if got := r.Timeline().Epochs[0]; got.CoreCycles[0] != 10 || got.BankAccesses[0] != 7 {
		t.Error("Timeline snapshot shares state with the recorder")
	}
}

func TestConfigDefaults(t *testing.T) {
	r := NewRecorder(Config{})
	if r.Every() != DefaultEvery {
		t.Errorf("default every = %d", r.Every())
	}
	r = NewRecorder(Config{Every: 10, Cap: 1})
	for i := 1; i <= 50; i++ {
		r.Observe(synthSample(i))
	}
	if n := len(r.Timeline().Epochs); n > 2 {
		t.Errorf("cap 1 clamps to 2, stored %d", n)
	}
}

func BenchmarkRecorderObserve(b *testing.B) {
	r := NewRecorder(Config{Every: 100, Cap: 256})
	for i := 0; i < b.N; i++ {
		r.Observe(synthSample(i + 1))
	}
	_ = fmt.Sprint(len(r.Timeline().Epochs))
}
