package flight

// Defaults for Config. DefaultEvery matches the ISCA'09 evaluation's
// measurement grain: coarse enough that the boundary check is noise in
// the hot loop, fine enough that phase structure survives.
const (
	DefaultEvery = 64 * 1024
	DefaultCap   = 256
)

// Config controls a Recorder. The zero value is usable: every field
// has a default.
type Config struct {
	// Every is the epoch length in measured references. 0 means
	// DefaultEvery.
	Every int
	// Cap bounds the number of stored epochs. When exceeded,
	// adjacent epochs merge 2→1. 0 means DefaultCap; minimum 2.
	Cap int
	// OnEpoch, if non-nil, observes every base epoch as it closes,
	// before any downsampling. Called synchronously from the engine
	// goroutine.
	OnEpoch func(Epoch)
}

// Transitions is a flat snapshot of OS-page classification activity
// (internal/ospage counters, flattened for deterministic encoding).
//
//rnuca:wire
type Transitions struct {
	FirstTouches    uint64 `json:"first_touches,omitempty"`
	PrivateToShared uint64 `json:"private_to_shared,omitempty"`
	Migrations      uint64 `json:"migrations,omitempty"`
	InstrToShared   uint64 `json:"instr_to_shared,omitempty"`
	PrivateToInstr  uint64 `json:"private_to_instr,omitempty"`
	PoisonWaits     uint64 `json:"poison_waits,omitempty"`
	TLBShootdowns   uint64 `json:"tlb_shootdowns,omitempty"`
}

func (t Transitions) sub(prev Transitions) Transitions {
	return Transitions{
		FirstTouches:    t.FirstTouches - prev.FirstTouches,
		PrivateToShared: t.PrivateToShared - prev.PrivateToShared,
		Migrations:      t.Migrations - prev.Migrations,
		InstrToShared:   t.InstrToShared - prev.InstrToShared,
		PrivateToInstr:  t.PrivateToInstr - prev.PrivateToInstr,
		PoisonWaits:     t.PoisonWaits - prev.PoisonWaits,
		TLBShootdowns:   t.TLBShootdowns - prev.TLBShootdowns,
	}
}

func (t Transitions) add(o Transitions) Transitions {
	return Transitions{
		FirstTouches:    t.FirstTouches + o.FirstTouches,
		PrivateToShared: t.PrivateToShared + o.PrivateToShared,
		Migrations:      t.Migrations + o.Migrations,
		InstrToShared:   t.InstrToShared + o.InstrToShared,
		PrivateToInstr:  t.PrivateToInstr + o.PrivateToInstr,
		PoisonWaits:     t.PoisonWaits + o.PoisonWaits,
		TLBShootdowns:   t.TLBShootdowns + o.TLBShootdowns,
	}
}

// Total is the number of reclassification events (first touches and
// shootdown side effects excluded) — the "churn" a placement policy
// pays for.
func (t Transitions) Total() uint64 {
	return t.PrivateToShared + t.Migrations + t.InstrToShared + t.PrivateToInstr
}

// NumClasses is the number of access-class lanes in a Sample/Epoch.
// It mirrors cache.Class (data/instruction/private/shared); the
// recorder stores them positionally to stay dependency-free.
const NumClasses = 4

// Sample is a cumulative counter snapshot the engine hands the
// recorder at an epoch boundary. All counters are monotone over a run;
// the recorder delta-encodes consecutive samples. Slices are owned by
// the recorder once passed — the engine must hand over fresh copies.
type Sample struct {
	Refs          uint64
	CoreCycles    []float64
	CoreInstrs    []uint64
	ClassAccesses [NumClasses]uint64
	ClassMisses   [NumClasses]uint64
	Transitions   Transitions
	BankAccesses  []uint64
	LinkFlits     []uint64
}

// Epoch is one stored timeline entry: the delta between two cumulative
// samples, possibly covering several base epochs after downsampling.
//
//rnuca:wire
type Epoch struct {
	// Index is the ordinal of the first base epoch this entry covers.
	Index int `json:"index"`
	// Epochs is how many base epochs were merged into this entry
	// (1 before any downsampling).
	Epochs int `json:"epochs"`
	// StartRef/EndRef delimit the measured-reference range [start,end).
	StartRef uint64 `json:"start_ref"`
	EndRef   uint64 `json:"end_ref"`

	CoreCycles    []float64          `json:"core_cycles"`
	CoreInstrs    []uint64           `json:"core_instrs"`
	ClassAccesses [NumClasses]uint64 `json:"class_accesses"`
	ClassMisses   [NumClasses]uint64 `json:"class_misses"`
	Transitions   Transitions        `json:"transitions"`
	BankAccesses  []uint64           `json:"bank_accesses"`
	LinkFlits     []uint64           `json:"link_flits,omitempty"`
}

// CPI is the epoch's cycles-per-instruction for one core, or 0 when
// the core retired nothing this epoch.
func (e Epoch) CPI(core int) float64 {
	if core >= len(e.CoreCycles) || core >= len(e.CoreInstrs) || e.CoreInstrs[core] == 0 {
		return 0
	}
	return e.CoreCycles[core] / float64(e.CoreInstrs[core])
}

// Refs is the number of measured references the epoch covers.
func (e Epoch) Refs() uint64 { return e.EndRef - e.StartRef }

// Timeline is the recorder's final product: the (possibly downsampled)
// epoch sequence plus the labels needed to read it.
//
//rnuca:wire
type Timeline struct {
	// EpochRefs is the base epoch length in measured references.
	EpochRefs int `json:"epoch_refs"`
	// BaseEpochs is how many base epochs were observed in total.
	BaseEpochs int `json:"base_epochs"`
	// Scale is the current downsampling factor: each stored epoch
	// covers up to Scale base epochs.
	Scale int `json:"scale"`
	Cores int `json:"cores"`
	Banks int `json:"banks"`
	// Links labels the LinkFlits lanes ("src>dst" tile IDs), in
	// first-traversal order. Epochs recorded before a link's first
	// traversal have shorter LinkFlits slices; absent lanes are zero.
	Links  []string `json:"links,omitempty"`
	Epochs []Epoch  `json:"epochs"`
}

// Recorder accumulates delta-encoded epochs with bounded memory.
// A Recorder is driven by exactly one engine goroutine; Timeline is
// read after the run completes.
type Recorder struct {
	every   int
	cap     int
	onEpoch func(Epoch)

	prev        Sample
	epochs      []Epoch
	scale       int
	baseEpochs  int
	downsamples int
	links       []string
}

// NewRecorder builds a Recorder from cfg, applying defaults.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Every <= 0 {
		cfg.Every = DefaultEvery
	}
	if cfg.Cap <= 0 {
		cfg.Cap = DefaultCap
	}
	if cfg.Cap < 2 {
		cfg.Cap = 2
	}
	return &Recorder{every: cfg.Every, cap: cfg.Cap, onEpoch: cfg.OnEpoch, scale: 1}
}

// Every is the configured base epoch length in measured references.
func (r *Recorder) Every() int { return r.every }

// Baseline seeds the recorder's previous sample without emitting an
// epoch, so activity before measurement (warmup) is excluded from the
// first epoch's delta. It is a no-op once any epoch has been observed.
func (r *Recorder) Baseline(s Sample) {
	if r.baseEpochs == 0 {
		r.prev = s
	}
}

// Observe closes a base epoch at cumulative snapshot s. A sample that
// advances no references (e.g. the end-of-run flush landing exactly on
// a boundary) is ignored, so callers may flush unconditionally.
//
//rnuca:hotpath
func (r *Recorder) Observe(s Sample) {
	if s.Refs == r.prev.Refs {
		return
	}
	e := Epoch{
		Index:        r.baseEpochs,
		Epochs:       1,
		StartRef:     r.prev.Refs,
		EndRef:       s.Refs,
		CoreCycles:   subF(s.CoreCycles, r.prev.CoreCycles),
		CoreInstrs:   subU(s.CoreInstrs, r.prev.CoreInstrs),
		Transitions:  s.Transitions.sub(r.prev.Transitions),
		BankAccesses: subU(s.BankAccesses, r.prev.BankAccesses),
		LinkFlits:    subU(s.LinkFlits, r.prev.LinkFlits),
	}
	for c := 0; c < NumClasses; c++ {
		e.ClassAccesses[c] = s.ClassAccesses[c] - r.prev.ClassAccesses[c]
		e.ClassMisses[c] = s.ClassMisses[c] - r.prev.ClassMisses[c]
	}
	r.baseEpochs++
	r.prev = s
	if r.onEpoch != nil {
		r.onEpoch(e)
	}
	r.push(e)
}

func (r *Recorder) push(e Epoch) {
	// While the trailing entry holds fewer base epochs than the
	// current scale, keep folding new epochs into it so entries stay
	// (close to) uniform after a downsample.
	if n := len(r.epochs); n > 0 && r.epochs[n-1].Epochs < r.scale {
		r.epochs[n-1] = merge(r.epochs[n-1], e)
		return
	}
	r.epochs = append(r.epochs, e)
	if len(r.epochs) > r.cap {
		r.downsample()
	}
}

// downsample merges adjacent epochs 2→1 and doubles the scale. Pairs
// that would exceed the new scale (possible after repeated rounds over
// a ragged tail) are left unmerged; the ring still at least halves
// minus one, so it stays under cap.
func (r *Recorder) downsample() {
	r.scale *= 2
	r.downsamples++
	out := r.epochs[:0]
	for i := 0; i < len(r.epochs); {
		if i+1 < len(r.epochs) && r.epochs[i].Epochs+r.epochs[i+1].Epochs <= r.scale {
			out = append(out, merge(r.epochs[i], r.epochs[i+1]))
			i += 2
		} else {
			out = append(out, r.epochs[i])
			i++
		}
	}
	r.epochs = out
}

// merge combines two adjacent epochs into one covering both ranges.
func merge(a, b Epoch) Epoch {
	m := Epoch{
		Index:        a.Index,
		Epochs:       a.Epochs + b.Epochs,
		StartRef:     a.StartRef,
		EndRef:       b.EndRef,
		CoreCycles:   addF(a.CoreCycles, b.CoreCycles),
		CoreInstrs:   addU(a.CoreInstrs, b.CoreInstrs),
		Transitions:  a.Transitions.add(b.Transitions),
		BankAccesses: addU(a.BankAccesses, b.BankAccesses),
		LinkFlits:    addU(a.LinkFlits, b.LinkFlits),
	}
	for c := 0; c < NumClasses; c++ {
		m.ClassAccesses[c] = a.ClassAccesses[c] + b.ClassAccesses[c]
		m.ClassMisses[c] = a.ClassMisses[c] + b.ClassMisses[c]
	}
	return m
}

// SetLinks records the link labels for the LinkFlits lanes, in lane
// order. Typically called once, after the run, when the network's
// first-traversal order is final.
func (r *Recorder) SetLinks(links []string) {
	r.links = append([]string(nil), links...)
}

// Timeline snapshots the recorded epochs. The returned value shares no
// mutable state with the Recorder.
func (r *Recorder) Timeline() *Timeline {
	t := &Timeline{
		EpochRefs:  r.every,
		BaseEpochs: r.baseEpochs,
		Scale:      r.scale,
		Cores:      len(r.prev.CoreCycles),
		Banks:      len(r.prev.BankAccesses),
		Links:      append([]string(nil), r.links...),
		Epochs:     make([]Epoch, len(r.epochs)),
	}
	for i, e := range r.epochs {
		e.CoreCycles = append([]float64(nil), e.CoreCycles...)
		e.CoreInstrs = append([]uint64(nil), e.CoreInstrs...)
		e.BankAccesses = append([]uint64(nil), e.BankAccesses...)
		e.LinkFlits = append([]uint64(nil), e.LinkFlits...)
		t.Epochs[i] = e
	}
	return t
}

// subU returns cur-prev element-wise; prev may be shorter (lanes
// appear over time), in which case missing entries are zero.
func subU(cur, prev []uint64) []uint64 {
	out := make([]uint64, len(cur))
	for i, v := range cur {
		if i < len(prev) {
			v -= prev[i]
		}
		out[i] = v
	}
	return out
}

func subF(cur, prev []float64) []float64 {
	out := make([]float64, len(cur))
	for i, v := range cur {
		if i < len(prev) {
			v -= prev[i]
		}
		out[i] = v
	}
	return out
}

// addU sums element-wise, extending to the longer slice.
func addU(a, b []uint64) []uint64 {
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make([]uint64, len(a))
	copy(out, a)
	for i, v := range b {
		out[i] += v
	}
	return out
}

func addF(a, b []float64) []float64 {
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make([]float64, len(a))
	copy(out, a)
	for i, v := range b {
		out[i] += v
	}
	return out
}
