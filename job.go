package rnuca

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"rnuca/internal/obs"
	"rnuca/internal/sim"
	"rnuca/internal/tracefile"
	"rnuca/internal/workload"
)

// jobEncodingVersion versions the canonical Job JSON. Bump it only
// for changes that alter the meaning of an encoding — every bump
// invalidates persisted result-cache keys built from older encodings.
const jobEncodingVersion = 2

// RunOptions tunes how a Job executes. It carries only knobs that
// are legal for every input kind: source
// selection lives on Input, replay-only knobs (window, shards) live
// on trace- and corpus-backed inputs, and cancellation is the
// context passed to Run/Compare.
type RunOptions struct {
	// Warm is the number of chip-wide references run before
	// measurement. 0 means the default (the recording run's split for
	// replays, 200k for generated runs).
	Warm int
	// Measure is the number of measured references. 0 means the
	// default.
	Measure int
	// Batches > 1 runs that many independently-seeded measurements
	// and reports mean CPI with a 95% confidence interval. 0 or 1
	// means a single batch.
	Batches int
	// InstrClusterSize overrides R-NUCA's instruction cluster size
	// (Figure 11 ablation). 0 means the configuration default.
	InstrClusterSize int
	// PrivateClusterSize > 1 enables the §4.4 extension: R-NUCA
	// spills private data over fixed-center clusters of this size.
	PrivateClusterSize int
	// Config overrides the CMP configuration. Nil selects the Table 1
	// configuration matching the workload's core count.
	Config *sim.Config
	// Progress, when non-nil, observes each engine roughly every few
	// thousand consumed references with the engine's running count
	// and per-engine total (Warm+Measure). It is a pure observation
	// hook: it cannot stop the run (cancel the context for that), it
	// cannot perturb the deterministic timing model, and it is
	// excluded from the canonical encoding and every cache key. With
	// Batches > 1 engines run concurrently, so it must be safe for
	// concurrent use.
	Progress func(done, total int)
	// Timeline, when non-nil, attaches a flight recorder
	// (internal/obs/flight) to the run: every Timeline.Every measured
	// references the engine snapshots per-core CPI, per-class traffic,
	// OS-page transitions, bank pressure, and link utilization into
	// Result.Timeline. Like Progress it is pure observation — it cannot
	// change the Result, and it is excluded from the canonical encoding
	// and every cache key. With Batches > 1 the timeline covers batch 0.
	Timeline *TimelineConfig
}

// ProgressGauge is a concurrency-safe monotone progress cell whose
// Observe method plugs directly into RunOptions.Progress: concurrent
// engines (batches, Compare designs) report independently and the
// largest count wins. The zero value is ready to use.
type ProgressGauge struct {
	done, total atomic.Int64
}

// Observe records an engine's progress report.
func (g *ProgressGauge) Observe(done, total int) {
	g.total.Store(int64(total))
	for {
		cur := g.done.Load()
		if int64(done) <= cur || g.done.CompareAndSwap(cur, int64(done)) {
			return
		}
	}
}

// Progress returns the largest observed count and the per-engine
// total.
func (g *ProgressGauge) Progress() (done, total int64) {
	return g.done.Load(), g.total.Load()
}

// Reset clears the gauge, e.g. between the cells of a compare sweep.
func (g *ProgressGauge) Reset() {
	g.done.Store(0)
	g.total.Store(0)
}

// Job is one simulation request: an Input (where references come
// from), one or more designs to evaluate, and the run options. A Job
// has exactly one canonical JSON encoding (MarshalJSON), which is
// both the wire format of the rnuca-serve job API and the basis of
// result-cache keys — anything that cannot change the Result (decode
// sharding, progress observation) is excluded from it by
// construction.
//
// Execute with Run (exactly one design) or Compare (any number); both
// take a context.Context, which is the cancellation path: engines
// poll it every few thousand simulated references, and a canceled run
// returns its partial Result together with the context's error.
type Job struct {
	// Input is the reference stream (FromWorkload, FromTrace,
	// FromCorpus, FromSource).
	Input Input
	// Designs are the L2 organizations to evaluate. Run requires
	// exactly one; Compare accepts any non-empty list.
	Designs []DesignID
	// Options tunes the run.
	Options RunOptions
	// Maker, when non-nil, constructs the design instance directly,
	// overriding Designs — the hook for ablations and ASR variants
	// (the legacy RunWith/ReplayWith). Maker jobs have no canonical
	// encoding and are never cached; Designs then only labels the
	// result.
	Maker func(*sim.Chassis) sim.Design
}

// Validate checks the job without running it: input construction
// errors, unknown designs, unbound corpus references, and negative
// options all surface here as errors (the legacy entry points
// panicked from deep inside the simulator instead).
func (j Job) Validate() error {
	if err := j.Input.Err(); err != nil {
		return err
	}
	if j.Input.kind == "" {
		return fmt.Errorf("rnuca: job has no input (use FromWorkload, FromTrace, FromCorpus, or FromSource)")
	}
	if j.Maker == nil {
		if len(j.Designs) == 0 {
			return fmt.Errorf("rnuca: job names no designs")
		}
		for _, id := range j.Designs {
			if !knownDesign(id) {
				return fmt.Errorf("rnuca: unknown design %q (P, A, S, R, I)", id)
			}
		}
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Warm", j.Options.Warm}, {"Measure", j.Options.Measure},
		{"Batches", j.Options.Batches},
		{"InstrClusterSize", j.Options.InstrClusterSize},
		{"PrivateClusterSize", j.Options.PrivateClusterSize},
	} {
		if f.v < 0 {
			return fmt.Errorf("rnuca: job option %s is negative (%d)", f.name, f.v)
		}
	}
	switch j.Input.kind {
	case InputWorkload:
		if err := j.Input.workload.Validate(); err != nil {
			return fmt.Errorf("rnuca: job workload: %w", err)
		}
	case InputCorpus:
		if j.Input.path == "" {
			return fmt.Errorf("rnuca: corpus input %q is unbound (Bind a store first)", j.Input.ref)
		}
	case InputSource:
		if !j.Input.hasWorkload && j.Options.Config == nil {
			return fmt.Errorf("rnuca: source input needs ForWorkload or an explicit Options.Config")
		}
	}
	return nil
}

func knownDesign(id DesignID) bool {
	for _, d := range AllDesigns() {
		if id == d {
			return true
		}
	}
	return false
}

// Run executes a single-design job. The context is the cancellation
// path: engines observe it every few thousand simulated references,
// and a canceled run stops promptly, returning the partial Result it
// had accumulated alongside the context's error.
func (j Job) Run(ctx context.Context) (Result, error) {
	if err := j.Validate(); err != nil {
		return Result{}, err
	}
	if j.Maker == nil && len(j.Designs) != 1 {
		return Result{}, fmt.Errorf("rnuca: Run on a %d-design job; use Compare", len(j.Designs))
	}
	var id DesignID
	if len(j.Designs) > 0 {
		id = j.Designs[0]
	}
	return j.runDesign(ctx, id)
}

// Compare executes every design of the job concurrently over the same
// input — the Figure 12 sweep. On error (cancellation included) the
// returned map still holds whatever results, partial or complete, the
// designs produced.
func (j Job) Compare(ctx context.Context) (map[DesignID]Result, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	if j.Maker != nil {
		return nil, fmt.Errorf("rnuca: Compare on a Maker job; use Run")
	}
	type cell struct {
		r   Result
		err error
	}
	cells := make([]cell, len(j.Designs))
	done := make(chan int, len(j.Designs))
	for i, id := range j.Designs {
		go func(i int, id DesignID) {
			cells[i].r, cells[i].err = j.runDesign(ctx, id)
			done <- i
		}(i, id)
	}
	for range j.Designs {
		<-done
	}
	out := make(map[DesignID]Result, len(j.Designs))
	var firstErr error
	for i, id := range j.Designs {
		out[id] = cells[i].r
		if cells[i].err != nil && firstErr == nil {
			firstErr = cells[i].err
		}
	}
	return out, firstErr
}

// Record executes a single-design workload job exactly as Run does
// (single batch), teeing every reference the engine consumes — warmup
// included — into a trace file at path. Replaying the file under the
// same design and reference counts reproduces the returned Result bit
// for bit.
func (j Job) Record(ctx context.Context, path string) (Result, error) {
	if err := j.Validate(); err != nil {
		return Result{}, err
	}
	if j.Input.kind != InputWorkload {
		return Result{}, fmt.Errorf("rnuca: Record on a %s input; recording captures a generated stream", j.Input.kind)
	}
	if j.Maker == nil && len(j.Designs) != 1 {
		return Result{}, fmt.Errorf("rnuca: Record on a %d-design job", len(j.Designs))
	}
	var id DesignID
	if len(j.Designs) > 0 {
		id = j.Designs[0]
	}
	w := j.Input.workload
	opt := j.Options.lower(ctx).withDefaults(w)
	opt.Batches = 1
	fw, err := tracefile.Create(path, tracefile.Header{
		Workload:   w.Name,
		Design:     string(id),
		Cores:      opt.Config.Cores,
		Seed:       w.Seed,
		Warm:       opt.Warm,
		Measure:    opt.Measure,
		OffChipMLP: w.OffChipMLP,
	})
	if err != nil {
		return Result{}, err
	}
	streams := tracefile.RecordStreams(fw.Writer, workload.Streams(w))
	mk := j.Maker
	if mk == nil {
		mk = designMaker(id, opt)
	}
	opt.flightRec = newFlightRecorder(opt)
	var out Result
	res := runOne(w, opt, mk, streams)
	out.Result = res
	out.CPIMean = res.CPI()
	if opt.flightRec != nil {
		out.Timeline = opt.flightRec.Timeline()
	}
	if t := obs.TraceFrom(ctx); t != nil {
		out.Timing = t.Stages()
	}
	if err := fw.Close(); err != nil {
		return out, err
	}
	return out, ctxErr(ctx)
}

// runDesign executes one design cell of the job.
func (j Job) runDesign(ctx context.Context, id DesignID) (res Result, err error) {
	defer func() {
		if t := obs.TraceFrom(ctx); t != nil {
			res.Timing = t.Stages()
		}
	}()
	opt := j.Options.lower(ctx)
	mk := j.Maker
	switch j.Input.kind {
	case InputTrace, InputCorpus:
		in := j.Input
		opt.Shards = in.shards
		opt.WindowStart, opt.WindowRefs = in.windowStart, in.windowRefs
		setup := obs.StartSpan(ctx, "replay.setup")
		setup.SetAttr("path", in.path)
		opt, w, err := replaySetup(in.path, opt)
		setup.End()
		if err != nil {
			return Result{}, err
		}
		var r Result
		switch {
		case mk != nil:
			r, err = replayBatches(in.path, w, opt, mk)
		case id == DesignASR:
			r, err = replayASRBest(in.path, w, opt)
		default:
			r, err = replayBatches(in.path, w, opt, designMaker(id, opt))
		}
		if err != nil {
			return r, err
		}
		return r, ctxErr(ctx)
	case InputWorkload:
		w := j.Input.workload
		opt = opt.withDefaults(w)
		var r Result
		switch {
		case mk != nil:
			r = runBatches(w, opt, mk)
		case id == DesignASR:
			r = runASRBest(w, opt)
		default:
			r = runBatches(w, opt, designMaker(id, opt))
		}
		return r, ctxErr(ctx)
	case InputSource:
		w := j.Input.workload
		if !j.Input.hasWorkload {
			// A bare source input: minimal timing parameters, chassis
			// shape from the validated explicit Config.
			w = Workload{Name: "source", Cores: j.Options.Config.Cores, OffChipMLP: 1}
		}
		opt.Source = j.Input.source
		opt = opt.withDefaults(w)
		if mk == nil {
			// ASR runs its adaptive variant only: the best-of-six sweep
			// would pull each batch's source six times.
			mk = designMaker(id, opt)
		}
		return runBatches(w, opt, mk), ctxErr(ctx)
	}
	return Result{}, fmt.Errorf("rnuca: job has no input")
}

// lower drops the public options onto the internal run machinery: a
// runOpts whose Progress callback both feeds the observation hook and
// polls the context — the single plumbing point through which
// cancellation reaches every engine — and whose ctx carries any span
// trace into the helpers.
func (ro RunOptions) lower(ctx context.Context) runOpts {
	o := runOpts{
		Warm:               ro.Warm,
		Measure:            ro.Measure,
		Batches:            ro.Batches,
		InstrClusterSize:   ro.InstrClusterSize,
		PrivateClusterSize: ro.PrivateClusterSize,
		Config:             ro.Config,
		Flight:             ro.Timeline,
		ctx:                ctx,
	}
	watch := ro.Progress
	if watch == nil && ctx.Done() == nil {
		// Nothing to observe and nothing to cancel: skip the hook so
		// the engine's fast path stays untouched.
		return o
	}
	o.Progress = func(done, total int) bool {
		if watch != nil {
			watch(done, total)
		}
		return ctx.Err() == nil
	}
	return o
}

// ctxErr converts a canceled context into the error a partial result
// is returned with.
func ctxErr(ctx context.Context) error {
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return nil
}

// jobJSON is the canonical encoding shape. Field order is fixed by
// this declaration; testdata/job-canonical.json freezes it.
//
//rnuca:wire
type jobJSON struct {
	V       int            `json:"v"`
	Input   Input          `json:"input"`
	Designs []DesignID     `json:"designs"`
	Options jobOptionsJSON `json:"options"`
}

// jobOptionsJSON is the result-relevant options subset in canonical
// field order. Progress is excluded (observation cannot change
// results); Batches is normalized so 0 and 1 — both "a single batch"
// — share one encoding.
//
//rnuca:wire
type jobOptionsJSON struct {
	Warm               int         `json:"warm"`
	Measure            int         `json:"measure"`
	Batches            int         `json:"batches"`
	InstrClusterSize   int         `json:"instr_cluster_size,omitempty"`
	PrivateClusterSize int         `json:"private_cluster_size,omitempty"`
	Config             *sim.Config `json:"config,omitempty"`
}

// MarshalJSON emits the job's canonical encoding: the wire format of
// POST /v1/jobs and the basis of result-cache keys. Two jobs whose
// encodings are byte-identical are guaranteed to produce
// bit-identical Results; knobs that provably cannot change results
// (Sharded, Progress, Timeline) are excluded by construction. Maker-
// and source-backed jobs have no canonical encoding and error.
func (j Job) MarshalJSON() ([]byte, error) {
	if j.Maker != nil {
		return nil, fmt.Errorf("rnuca: a Maker job has no canonical encoding")
	}
	batches := j.Options.Batches
	if batches == 0 {
		batches = 1
	}
	return json.Marshal(jobJSON{
		V:       jobEncodingVersion,
		Input:   j.Input,
		Designs: j.Designs,
		Options: jobOptionsJSON{
			Warm:               j.Options.Warm,
			Measure:            j.Options.Measure,
			Batches:            batches,
			InstrClusterSize:   j.Options.InstrClusterSize,
			PrivateClusterSize: j.Options.PrivateClusterSize,
			Config:             j.Options.Config,
		},
	})
}

// UnmarshalJSON decodes a canonical (or wire-shorthand) encoding.
func (j *Job) UnmarshalJSON(b []byte) error {
	var raw struct {
		V       *int            `json:"v"`
		Input   json.RawMessage `json:"input"`
		Designs []DesignID      `json:"designs"`
		Options jobOptionsJSON  `json:"options"`
	}
	if err := json.Unmarshal(b, &raw); err != nil {
		return fmt.Errorf("rnuca: decoding job: %w", err)
	}
	if raw.V != nil && *raw.V != jobEncodingVersion {
		return fmt.Errorf("rnuca: unsupported job encoding version %d (this release speaks v%d)", *raw.V, jobEncodingVersion)
	}
	if raw.Input == nil {
		return fmt.Errorf("rnuca: job encoding carries no input")
	}
	var in Input
	if err := json.Unmarshal(raw.Input, &in); err != nil {
		return err
	}
	*j = Job{
		Input:   in,
		Designs: raw.Designs,
		Options: RunOptions{
			Warm:               raw.Options.Warm,
			Measure:            raw.Options.Measure,
			Batches:            raw.Options.Batches,
			InstrClusterSize:   raw.Options.InstrClusterSize,
			PrivateClusterSize: raw.Options.PrivateClusterSize,
			Config:             raw.Options.Config,
		},
	}
	return nil
}

// Bind resolves the job's input against a corpus store (a no-op for
// non-corpus inputs) — what a server does between decoding a wire job
// and validating it.
func (j Job) Bind(st CorpusStore) (Job, error) {
	in, err := j.Input.Bind(st)
	if err != nil {
		return j, err
	}
	j.Input = in
	return j, nil
}

// WithDesign returns a copy of the job narrowed to a single design —
// the per-cell view a cache keys and a compare loop executes.
func (j Job) WithDesign(id DesignID) Job {
	j.Designs = []DesignID{id}
	return j
}
