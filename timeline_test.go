package rnuca_test

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"rnuca"
)

// timelineJob is a short R-NUCA run with epochs small enough that the
// measurement spans several of them.
func timelineJob(cfg *rnuca.TimelineConfig) rnuca.Job {
	return rnuca.Job{
		Input:   rnuca.FromWorkload(rnuca.OLTPDB2()),
		Designs: []rnuca.DesignID{rnuca.DesignRNUCA},
		Options: rnuca.RunOptions{Warm: 10_000, Measure: 20_000, Timeline: cfg},
	}
}

// TestTimelineBitIdentity is the flight recorder's core contract: a
// recorded run's Result is byte-identical to an unrecorded one, and two
// identical recorded runs produce byte-identical timelines.
func TestTimelineBitIdentity(t *testing.T) {
	ctx := context.Background()
	bare, err := timelineJob(nil).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := timelineJob(&rnuca.TimelineConfig{Every: 4096}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bj, _ := json.Marshal(bare)
	rj, _ := json.Marshal(rec)
	if string(bj) != string(rj) {
		t.Errorf("recorder perturbed the Result:\nbare %s\nrec  %s", bj, rj)
	}
	if bare.Result != rec.Result {
		t.Error("recorder perturbed the raw sim.Result")
	}
	if rec.Timeline == nil {
		t.Fatal("recorded run has no Timeline")
	}

	rec2, err := timelineJob(&rnuca.TimelineConfig{Every: 4096}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := json.Marshal(rec.Timeline)
	t2, _ := json.Marshal(rec2.Timeline)
	if string(t1) != string(t2) {
		t.Error("two identical runs produced different timelines")
	}
}

func TestTimelineContents(t *testing.T) {
	r, err := timelineJob(&rnuca.TimelineConfig{Every: 4096}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tl := r.Timeline
	if tl == nil {
		t.Fatal("no timeline")
	}
	// 20k measured refs at 4096/epoch: 4 full epochs + a partial flush.
	if tl.BaseEpochs != 5 {
		t.Errorf("base epochs = %d, want 5", tl.BaseEpochs)
	}
	if tl.EpochRefs != 4096 {
		t.Errorf("epoch refs = %d", tl.EpochRefs)
	}
	if tl.Cores != 16 || tl.Banks != 16 {
		t.Errorf("cores %d banks %d, want 16/16", tl.Cores, tl.Banks)
	}
	if len(tl.Links) == 0 {
		t.Error("no link lanes recorded")
	}
	var refs, instrs uint64
	var cycles float64
	for _, e := range tl.Epochs {
		refs += e.Refs()
		for c := 0; c < tl.Cores; c++ {
			cycles += e.CoreCycles[c]
			instrs += e.CoreInstrs[c]
		}
	}
	// The epochs partition the measurement exactly.
	if refs != r.Refs {
		t.Errorf("timeline covers %d refs, Result measured %d", refs, r.Refs)
	}
	if instrs != r.Instructions {
		t.Errorf("timeline instrs %d, Result %d", instrs, r.Instructions)
	}
	// Cycles are float sums in a different association order than the
	// Result's running total, so compare within FP tolerance.
	if d := cycles - r.Cycles; d > 1e-6*r.Cycles || d < -1e-6*r.Cycles {
		t.Errorf("timeline cycles %g, Result %g", cycles, r.Cycles)
	}
	// R-NUCA classifies pages, so a fresh run must see first touches.
	var ft uint64
	for _, e := range tl.Epochs {
		ft += e.Transitions.FirstTouches
	}
	if ft == 0 {
		t.Error("no OS-page first touches on the R-NUCA timeline")
	}
}

// TestTimelineReplayMatchesRecording checks the replay path: recording
// a run and replaying its trace with the same recorder config yields
// byte-identical timelines (same refs, same epochs).
func TestTimelineReplayMatchesRecording(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "tl.rnuca")
	cfg := &rnuca.TimelineConfig{Every: 4096}
	recJob := timelineJob(cfg)
	recorded, err := recJob.Record(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	if recorded.Timeline == nil {
		t.Fatal("Record produced no timeline")
	}
	replayed, err := rnuca.Job{
		Input:   rnuca.FromTrace(path),
		Designs: []rnuca.DesignID{rnuca.DesignRNUCA},
		Options: rnuca.RunOptions{Timeline: cfg},
	}.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(recorded.Timeline)
	b, _ := json.Marshal(replayed.Timeline)
	if string(a) != string(b) {
		t.Errorf("replay timeline differs from recording timeline:\nrec    %s\nreplay %s", a, b)
	}
}

// TestTimelineBatchesCoverBatchZero documents the Batches > 1 contract.
func TestTimelineBatchesCoverBatchZero(t *testing.T) {
	j := timelineJob(&rnuca.TimelineConfig{Every: 4096})
	j.Options.Batches = 2
	r, err := j.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Timeline == nil {
		t.Fatal("no timeline with Batches > 1")
	}
	var refs uint64
	for _, e := range r.Timeline.Epochs {
		refs += e.Refs()
	}
	if refs != 20_000 {
		t.Errorf("timeline covers %d refs, want batch 0's 20000", refs)
	}
}
