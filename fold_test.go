package rnuca

import (
	"math"
	"testing"

	"rnuca/internal/sim"
)

// fold must weight every batch equally. The pre-v2 fold
// averaged pairwise — ((a+b)/2+c)/2 — which weighted batch b of B by
// 2^-(B-b): with three batches the first two carried 25% each and the
// last 50%.
func TestFoldResultsEqualBatchWeight(t *testing.T) {
	mk := func(v float64) sim.Result {
		var r sim.Result
		r.Instructions = 100
		r.Refs = 50
		r.Cycles = 100 * v
		r.OffChipMisses = uint64(v)
		for i := range r.CPIStack {
			r.CPIStack[i] = v
		}
		for c := range r.ClassCycles {
			for i := range r.ClassCycles[c] {
				r.ClassCycles[c][i] = v
			}
		}
		return r
	}
	got := fold(runOpts{}, []sim.Result{mk(1), mk(2), mk(4)})

	want := 7.0 / 3 // equal weighting; the old pairwise fold gave 2.75
	for i := range got.CPIStack {
		if math.Abs(got.CPIStack[i]-want) > 1e-12 {
			t.Fatalf("CPIStack[%d] = %v, want %v (equal batch weight)", i, got.CPIStack[i], want)
		}
	}
	for c := range got.ClassCycles {
		for i := range got.ClassCycles[c] {
			if math.Abs(got.ClassCycles[c][i]-want) > 1e-12 {
				t.Fatalf("ClassCycles[%d][%d] = %v, want %v", c, i, got.ClassCycles[c][i], want)
			}
		}
	}
	// Counters sum; the aggregate CPI stays total-cycles over
	// total-instructions.
	if got.Instructions != 300 || got.Refs != 150 || got.OffChipMisses != 7 {
		t.Fatalf("counters did not sum: %+v", got)
	}
	if math.Abs(got.Cycles-700) > 1e-12 || math.Abs(got.CPI()-700.0/300) > 1e-12 {
		t.Fatalf("Cycles %v CPI %v", got.Cycles, got.CPI())
	}

	// A single batch folds to itself, bit for bit.
	if one := fold(runOpts{}, []sim.Result{mk(3)}); one != mk(3) {
		t.Fatal("single-batch fold must be the identity")
	}
}
