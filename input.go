package rnuca

import (
	"encoding/json"
	"fmt"
	"sync"

	"rnuca/internal/digest"
	"rnuca/internal/workload"
)

// InputKind names where an Input's reference stream comes from.
type InputKind string

// Input kinds.
const (
	// InputWorkload generates references from a statistical workload
	// spec (FromWorkload).
	InputWorkload InputKind = "workload"
	// InputTrace replays a recorded trace file by path (FromTrace).
	InputTrace InputKind = "trace"
	// InputCorpus replays a content-addressed corpus object
	// (FromCorpus, FromCorpusRef).
	InputCorpus InputKind = "corpus"
	// InputSource draws references from a caller-supplied RefSource
	// factory (FromSource). Source inputs have no canonical encoding.
	InputSource InputKind = "source"
)

// CorpusStore is the slice of a content-addressed corpus store an
// Input needs to resolve references: internal/corpus.Store implements
// it, and so can any client-side store a caller wants to plug in.
type CorpusStore interface {
	// Resolve maps a digest, unique digest prefix, or name to the
	// content digest of a stored trace.
	Resolve(ref string) (digest string, err error)
	// Path returns the on-disk path of the object with that digest.
	Path(digest string) string
}

// lazyDigest memoizes the content hash of a trace file so repeated
// canonicalizations of the same Input (cache keys, wire encodings) pay
// for one read. Copies of an Input share the cell.
type lazyDigest struct {
	once sync.Once
	d    string
	err  error
}

func (l *lazyDigest) digest(path string) (string, error) {
	l.once.Do(func() { l.d, l.err = digest.File(path) })
	return l.d, l.err
}

// Input is the reference-stream half of a Job: where the simulated
// references come from, together with the knobs that are legal for
// that source and nothing else (a window or decode sharding only mean
// something on a seekable trace, so only trace- and corpus-backed
// inputs carry them — illegal combinations are unrepresentable rather
// than silently ignored).
//
// Inputs are immutable values built by the From* constructors and
// refined by the knob methods, which return a new Input. A knob
// applied to an input kind it does not fit poisons the value: the
// error is carried inside and surfaced by Job.Validate / Job.Run, so
// construction chains never panic.
type Input struct {
	kind InputKind
	err  error

	// workload carries the statistical spec (InputWorkload), or the
	// timing parameters a source input attached via ForWorkload.
	workload    Workload
	hasWorkload bool

	// path is the trace file to replay (InputTrace, or InputCorpus
	// after binding to a store).
	path string
	// digest is the content SHA-256: resolved eagerly for corpus
	// inputs, lazily (hashing path) for trace inputs.
	digest string
	lazy   *lazyDigest
	// ref is the corpus reference as given (digest, prefix, or name).
	ref string

	source func(batch int) RefSource

	windowStart, windowRefs uint64
	shards                  int
}

// FromWorkload builds an input that generates references from a
// statistical workload spec (the catalog constructors, or any custom
// Workload).
func FromWorkload(w Workload) Input {
	return Input{kind: InputWorkload, workload: w, hasWorkload: true}
}

// FromTrace builds an input that replays a recorded trace file. The
// trace header supplies the workload's timing parameters; Window and
// Sharded refine it. Canonically the input is identified by the
// file's content digest, so a trace input and a corpus input holding
// the same bytes encode — and cache — identically.
func FromTrace(path string) Input {
	in := Input{kind: InputTrace, path: path, lazy: &lazyDigest{}}
	if path == "" {
		in.err = fmt.Errorf("rnuca: FromTrace with an empty path")
	}
	return in
}

// FromCorpus builds an input that replays a stored corpus object,
// resolving ref (a digest, unique digest prefix, or name) against the
// store immediately so a dangling reference fails fast at
// Job.Validate rather than mid-run.
func FromCorpus(st CorpusStore, ref string) Input {
	in := Input{kind: InputCorpus, ref: ref}
	if st == nil {
		in.err = fmt.Errorf("rnuca: FromCorpus with a nil store")
		return in
	}
	bound, err := in.Bind(st)
	if err != nil {
		in.err = err
		return in
	}
	return bound
}

// FromCorpusRef builds an unbound corpus input from a reference alone
// — what a client talking to a remote rnuca-serve holds. A full
// 64-hex digest is canonical as-is; a name or prefix must be resolved
// by whoever owns the store (Input.Bind, or the server at submit).
func FromCorpusRef(ref string) Input {
	in := Input{kind: InputCorpus, ref: ref}
	if ref == "" {
		in.err = fmt.Errorf("rnuca: FromCorpusRef with an empty reference")
		return in
	}
	if isHexDigest(ref) {
		in.digest = ref
	}
	return in
}

// FromSource builds an input that draws references from a
// caller-supplied factory: batch b's references come from fn(b),
// demultiplexed per core by each ref's Core field. Source inputs have
// no canonical encoding (a closure cannot be serialized or cached)
// and need either ForWorkload or an explicit RunOptions.Config for
// the chassis parameters.
func FromSource(fn func(batch int) RefSource) Input {
	in := Input{kind: InputSource, source: fn}
	if fn == nil {
		in.err = fmt.Errorf("rnuca: FromSource with a nil factory")
	}
	return in
}

// Window restricts a trace- or corpus-backed input to the records
// [start, start+refs); refs 0 means "to the end of the trace". It
// requires a v2 indexed trace. On any other input kind the result is
// poisoned: windows sample a seekable recording, a generator or
// source has nothing to seek.
func (in Input) Window(start, refs uint64) Input {
	if in.err != nil {
		return in
	}
	if !in.Replays() {
		in.err = fmt.Errorf("rnuca: Window on a %s input (windows need a trace or corpus)", in.kind)
		return in
	}
	in.windowStart, in.windowRefs = start, refs
	return in
}

// Sharded fans the input's chunk decoding across n parallel workers
// (v2 indexed traces only). Sharding overlaps decompression with the
// simulation without changing results — it is an execution hint, not
// part of the input's identity, so it does not appear in the
// canonical encoding and sharded and sequential runs share one cache
// entry. On non-replay inputs the result is poisoned.
func (in Input) Sharded(n int) Input {
	if in.err != nil {
		return in
	}
	if !in.Replays() {
		in.err = fmt.Errorf("rnuca: Sharded on a %s input (sharding needs a trace or corpus)", in.kind)
		return in
	}
	if n < 0 {
		in.err = fmt.Errorf("rnuca: Sharded(%d)", n)
		return in
	}
	in.shards = n
	return in
}

// ForWorkload attaches timing parameters (core count, off-chip MLP,
// name) to a source-backed input, the way the legacy Run(w, id, opt)
// call paired Options.Source with a workload argument. Poisons any
// other kind: workload/trace/corpus inputs already know their
// parameters.
func (in Input) ForWorkload(w Workload) Input {
	if in.err != nil {
		return in
	}
	if in.kind != InputSource {
		in.err = fmt.Errorf("rnuca: ForWorkload on a %s input", in.kind)
		return in
	}
	in.workload = w
	in.hasWorkload = true
	return in
}

// Kind reports where the input's references come from ("" for the
// zero Input).
func (in Input) Kind() InputKind { return in.kind }

// Replays reports whether the input replays a recorded trace (trace-
// or corpus-backed), i.e. whether Window and Sharded apply.
func (in Input) Replays() bool { return in.kind == InputTrace || in.kind == InputCorpus }

// Err returns the deferred construction error, if any knob or
// constructor was misused.
func (in Input) Err() error { return in.err }

// Bind resolves a corpus input against a store: the reference becomes
// a content digest and an on-disk path. Bound inputs are returned
// unchanged, as are non-corpus kinds (binding is a no-op for them).
func (in Input) Bind(st CorpusStore) (Input, error) {
	if in.err != nil {
		return in, in.err
	}
	if in.kind != InputCorpus || in.path != "" {
		return in, nil
	}
	if st == nil {
		return in, fmt.Errorf("rnuca: binding corpus input %q: nil store", in.ref)
	}
	ref := in.ref
	if ref == "" {
		ref = in.digest
	}
	digest, err := st.Resolve(ref)
	if err != nil {
		return in, fmt.Errorf("rnuca: resolving corpus %q: %w", ref, err)
	}
	in.digest = digest
	in.path = st.Path(digest)
	return in, nil
}

// Workload resolves the workload the input describes: the spec itself
// for workload inputs (or a source input's attached one), the trace
// header's catalog entry or minimal reconstruction for trace- and
// corpus-backed inputs.
func (in Input) Workload() (Workload, error) {
	if in.err != nil {
		return Workload{}, in.err
	}
	switch in.kind {
	case InputWorkload:
		return in.workload, nil
	case InputSource:
		if !in.hasWorkload {
			return Workload{}, fmt.Errorf("rnuca: source input carries no workload (use ForWorkload)")
		}
		return in.workload, nil
	case InputTrace, InputCorpus:
		if in.path == "" {
			return Workload{}, fmt.Errorf("rnuca: corpus input %q is unbound (Bind a store)", in.ref)
		}
		return TraceWorkload(in.path)
	}
	return Workload{}, fmt.Errorf("rnuca: empty Input has no workload")
}

// Digest returns the content SHA-256 identifying a replay input (the
// resolved digest of a corpus input, the lazily-computed file hash of
// a trace input). Non-replay and unbound inputs error.
func (in Input) Digest() (string, error) { return in.contentDigest() }

// TracePath returns the on-disk trace a replay input reads ("" for
// generated and source inputs, and for unbound corpus references).
func (in Input) TracePath() string { return in.path }

// WindowRange returns the record window a replay input is restricted
// to (0, 0 when unwindowed).
func (in Input) WindowRange() (start, refs uint64) { return in.windowStart, in.windowRefs }

// contentDigest returns the input's content identity, hashing the
// trace file on first use for path-backed inputs.
func (in Input) contentDigest() (string, error) {
	switch in.kind {
	case InputCorpus:
		if in.digest == "" {
			return "", fmt.Errorf("rnuca: corpus input %q is unbound (no digest; Bind a store)", in.ref)
		}
		return in.digest, nil
	case InputTrace:
		if in.digest != "" {
			return in.digest, nil
		}
		d, err := in.lazy.digest(in.path)
		if err != nil {
			return "", fmt.Errorf("rnuca: hashing trace %s: %w", in.path, err)
		}
		return d, nil
	}
	return "", fmt.Errorf("rnuca: %s input has no content digest", in.kind)
}

// isHexDigest reports whether s is a full lowercase-hex SHA-256.
func isHexDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// inputJSON is the wire/canonical encoding of an Input: exactly one
// of Workload or Corpus is set. Workload inputs carry the full spec
// (every field that shapes generation distinguishes the encoding);
// trace and corpus inputs collapse to the content digest plus the
// window, so a sharded and a sequential replay of the same bytes — or
// a path-backed and a store-backed one — encode identically.
//
//rnuca:wire
type inputJSON struct {
	Workload *Workload      `json:"workload,omitempty"`
	Corpus   *corpusRefJSON `json:"corpus,omitempty"`
}

//rnuca:wire
type corpusRefJSON struct {
	Digest string `json:"digest,omitempty"`
	// Ref is a non-canonical convenience for wire clients: a name or
	// digest prefix the receiving server resolves at submit. Canonical
	// encodings always carry the digest instead.
	Ref         string `json:"ref,omitempty"`
	WindowStart uint64 `json:"window_start,omitempty"`
	WindowRefs  uint64 `json:"window_refs,omitempty"`
}

// MarshalJSON emits the input's canonical encoding. Source-backed
// inputs and poisoned inputs have none and error; an unbound corpus
// name is emitted as a non-canonical {"ref": ...} for wire use.
func (in Input) MarshalJSON() ([]byte, error) {
	if in.err != nil {
		return nil, in.err
	}
	switch in.kind {
	case InputWorkload:
		w := in.workload
		return json.Marshal(inputJSON{Workload: &w})
	case InputTrace, InputCorpus:
		c := corpusRefJSON{WindowStart: in.windowStart, WindowRefs: in.windowRefs}
		d, err := in.contentDigest()
		switch {
		case err == nil:
			c.Digest = d
		case in.kind == InputCorpus && in.ref != "":
			c.Ref = in.ref
		default:
			return nil, err
		}
		return json.Marshal(inputJSON{Corpus: &c})
	case InputSource:
		return nil, fmt.Errorf("rnuca: source-backed input has no canonical encoding")
	}
	return nil, fmt.Errorf("rnuca: encoding an empty Input")
}

// UnmarshalJSON decodes the canonical encoding, plus two wire
// shorthands: {"workload":"OLTP-DB2"} names a catalog workload, and
// {"corpus":"oltp"} is a bare store reference.
func (in *Input) UnmarshalJSON(b []byte) error {
	var raw struct {
		Workload json.RawMessage `json:"workload"`
		Corpus   json.RawMessage `json:"corpus"`
	}
	if err := json.Unmarshal(b, &raw); err != nil {
		return fmt.Errorf("rnuca: decoding input: %w", err)
	}
	switch {
	case raw.Workload != nil && raw.Corpus != nil:
		return fmt.Errorf("rnuca: input names both a workload and a corpus")
	case raw.Workload != nil:
		var name string
		if err := json.Unmarshal(raw.Workload, &name); err == nil {
			w, ok := workload.ByName(name)
			if !ok {
				return fmt.Errorf("rnuca: unknown workload %q", name)
			}
			*in = FromWorkload(w)
			return nil
		}
		var w Workload
		if err := json.Unmarshal(raw.Workload, &w); err != nil {
			return fmt.Errorf("rnuca: decoding workload input: %w", err)
		}
		// A name-only spec is a catalog lookup too, so thin wire specs
		// need not replicate the full calibration.
		if w.Cores == 0 && w.Name != "" {
			cat, ok := workload.ByName(w.Name)
			if !ok {
				return fmt.Errorf("rnuca: unknown workload %q", w.Name)
			}
			w = cat
		}
		*in = FromWorkload(w)
		return nil
	case raw.Corpus != nil:
		var ref string
		if err := json.Unmarshal(raw.Corpus, &ref); err == nil {
			*in = FromCorpusRef(ref)
			return nil
		}
		var c corpusRefJSON
		if err := json.Unmarshal(raw.Corpus, &c); err != nil {
			return fmt.Errorf("rnuca: decoding corpus input: %w", err)
		}
		// When both are present the content digest wins — a name is
		// mutable and must not silently override pinned content.
		ref = c.Digest
		if ref == "" {
			ref = c.Ref
		}
		out := FromCorpusRef(ref)
		if c.WindowStart > 0 || c.WindowRefs > 0 {
			out = out.Window(c.WindowStart, c.WindowRefs)
		}
		if out.err != nil {
			return out.err
		}
		*in = out
		return nil
	}
	return fmt.Errorf("rnuca: input names neither a workload nor a corpus")
}
