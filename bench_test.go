// Benchmark harness: one benchmark per table and figure of the paper
// (regenerating the experiment end to end at a reduced scale), plus
// microbenchmarks of the core mechanisms (rotational interleaving lookup,
// cache and directory operations, torus traversal, workload generation,
// and full-engine throughput per design).
//
// Regenerate everything at publication scale with:
//
//	go run ./cmd/rnuca-figures -scale full
//
// and at benchmark scale with:
//
//	go test -bench=Figure -benchmem
package rnuca_test

import (
	"testing"

	"rnuca"
	"rnuca/internal/cache"
	"rnuca/internal/experiments"
	"rnuca/internal/noc"
	rot "rnuca/internal/rnuca"
	"rnuca/internal/sim"
	"rnuca/internal/workload"
)

// benchScale keeps figure benchmarks to a few seconds per iteration.
func benchScale() experiments.Scale {
	return experiments.Scale{Warm: 10_000, Measure: 20_000, TraceRefs: 40_000, Batches: 1}
}

func BenchmarkTable1Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs := experiments.Table1()
		if len(tabs) != 2 {
			b.Fatal("table 1 incomplete")
		}
	}
}

func BenchmarkFigure2ReferenceClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.NewCampaign(benchScale())
		if tabs := c.Fig2(); len(tabs) != 2 {
			b.Fatal("fig2 incomplete")
		}
	}
}

func BenchmarkFigure3ReferenceBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.NewCampaign(benchScale())
		if t := c.Fig3(); len(t.Rows) != 8 {
			b.Fatal("fig3 incomplete")
		}
	}
}

func BenchmarkFigure4WorkingSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.NewCampaign(benchScale())
		if t := c.Fig4(); len(t.Rows) == 0 {
			b.Fatal("fig4 empty")
		}
	}
}

func BenchmarkFigure5Reuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.NewCampaign(benchScale())
		if t := c.Fig5(); len(t.Rows) != 16 {
			b.Fatal("fig5 incomplete")
		}
	}
}

func BenchmarkClassificationAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.NewCampaign(benchScale())
		if t := c.ClassificationAccuracy(); len(t.Rows) != 8 {
			b.Fatal("classacc incomplete")
		}
	}
}

func BenchmarkFigure7CPIBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.NewCampaign(benchScale())
		if t := c.Fig7(); len(t.Rows) != 32 {
			b.Fatal("fig7 incomplete")
		}
	}
}

func BenchmarkFigure8SharedDataCPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.NewCampaign(benchScale())
		if t := c.Fig8(); len(t.Rows) != 32 {
			b.Fatal("fig8 incomplete")
		}
	}
}

func BenchmarkFigure9PrivateDataCPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.NewCampaign(benchScale())
		if t := c.Fig9(); len(t.Rows) != 32 {
			b.Fatal("fig9 incomplete")
		}
	}
}

func BenchmarkFigure10InstructionCPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.NewCampaign(benchScale())
		if t := c.Fig10(); len(t.Rows) != 32 {
			b.Fatal("fig10 incomplete")
		}
	}
}

func BenchmarkFigure11ClusterSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.NewCampaign(benchScale())
		if t := c.Fig11(); len(t.Rows) == 0 {
			b.Fatal("fig11 empty")
		}
	}
}

func BenchmarkFigure12Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.NewCampaign(benchScale())
		if t := c.Fig12(); len(t.Rows) < 8 {
			b.Fatal("fig12 incomplete")
		}
	}
}

func BenchmarkExtensionScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.NewCampaign(benchScale())
		if t := c.TechnologyScaling(); len(t.Rows) != 3 {
			b.Fatal("scaling incomplete")
		}
	}
}

func BenchmarkExtensionMeshVsTorus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.NewCampaign(benchScale())
		if t := c.MeshVsTorus(); len(t.Rows) != 2 {
			b.Fatal("meshtorus incomplete")
		}
	}
}

func BenchmarkExtensionTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.NewCampaign(benchScale())
		if t := c.TrafficComparison(); len(t.Rows) != 4 {
			b.Fatal("traffic incomplete")
		}
	}
}

func BenchmarkExtensionContentionModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.NewCampaign(benchScale())
		if t := c.ContentionModelAblation(); len(t.Rows) != 2 {
			b.Fatal("nocmodel incomplete")
		}
	}
}

func BenchmarkExtensionMemLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.NewCampaign(benchScale())
		if t := c.MemLatencySweep(); len(t.Rows) != 3 {
			b.Fatal("memlat incomplete")
		}
	}
}

// ---- Microbenchmarks of the core mechanisms ----

func BenchmarkRotationalLookup(b *testing.B) {
	topo := noc.NewFoldedTorus2D(4, 4)
	m := rot.NewRIDMap(topo, 4, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.SliceFor(noc.TileID(i%16), uint64(i)<<16, 16)
	}
}

func BenchmarkTorusLatency(b *testing.B) {
	n := noc.NewNetwork(noc.NewFoldedTorus2D(4, 4), noc.DefaultLinkConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = n.Latency(noc.TileID(i%16), noc.TileID((i*7)%16), noc.DataBytes)
	}
}

func BenchmarkCacheLookupInsert(b *testing.B) {
	c := cache.New(cache.Geometry{SizeBytes: 1 << 20, Ways: 16, BlockBytes: 64})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := cache.Addr(uint64(i%32768) * 64)
		if _, hit := c.Lookup(addr); !hit {
			c.Insert(addr, cache.Shared, cache.ClassShared)
		}
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	g := workload.NewGenerator(rnuca.OLTPDB2(), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}

// Engine throughput for each design on OLTP-DB2, reported as ns per
// simulated L2 reference.
func benchDesign(b *testing.B, id rnuca.DesignID) {
	w := rnuca.OLTPDB2()
	cfg := rnuca.ConfigFor(w)
	ch := sim.NewChassis(cfg)
	d := rnuca.NewDesign(id, ch)
	eng := sim.NewEngine(ch, d, workload.Streams(w))
	eng.OffChipMLP = w.OffChipMLP
	b.ResetTimer()
	eng.Run(0, b.N)
}

func BenchmarkEnginePrivate(b *testing.B) { benchDesign(b, rnuca.DesignPrivate) }
func BenchmarkEngineShared(b *testing.B)  { benchDesign(b, rnuca.DesignShared) }
func BenchmarkEngineRNUCA(b *testing.B)   { benchDesign(b, rnuca.DesignRNUCA) }
func BenchmarkEngineIdeal(b *testing.B)   { benchDesign(b, rnuca.DesignIdeal) }
