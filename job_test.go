package rnuca_test

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rnuca"
	"rnuca/internal/resultcache"
)

// The canonical Job JSON encoding is frozen by a checked-in fixture:
// result-cache keys are built from these bytes, so any unannounced
// change to the encoding would silently invalidate (or worse, alias)
// every persisted key. If this test fails because the encoding
// changed on purpose, bump the encoding version and regenerate the
// fixture — do not just update the file.
func TestJobCanonicalEncodingGolden(t *testing.T) {
	jobs := []rnuca.Job{
		{
			Input:   rnuca.FromWorkload(rnuca.OLTPDB2()),
			Designs: []rnuca.DesignID{rnuca.DesignRNUCA},
			Options: rnuca.RunOptions{Warm: 200_000, Measure: 400_000},
		},
		{
			Input:   rnuca.FromCorpusRef(strings.Repeat("0123456789abcdef", 4)).Window(4096, 65536),
			Designs: rnuca.AllDesigns(),
			Options: rnuca.RunOptions{Batches: 3, InstrClusterSize: 8},
		},
	}
	raw, err := os.ReadFile(filepath.Join("testdata", "job-canonical.json"))
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(want) != len(jobs) {
		t.Fatalf("fixture holds %d encodings, want %d", len(want), len(jobs))
	}
	for i, j := range jobs {
		b, err := json.Marshal(j)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if string(b) != want[i] {
			t.Errorf("job %d canonical encoding drifted:\n  got  %s\n  want %s", i, b, want[i])
		}
		// The encoding round-trips: decode and re-encode losslessly.
		var back rnuca.Job
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("job %d round trip: %v", i, err)
		}
		b2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("job %d re-encode: %v", i, err)
		}
		if string(b2) != string(b) {
			t.Errorf("job %d not round-trip stable:\n  first  %s\n  second %s", i, b, b2)
		}
	}
}

// A sharded and a sequential replay of the same bytes are the same
// cell: identical canonical encodings, identical cache keys — and a
// path-backed trace input keys identically to a corpus input holding
// the same content.
func TestJobKeyShardedSequentialIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.bin")
	if err := os.WriteFile(path, []byte("not-even-a-real-trace: keys hash content"), 0o644); err != nil {
		t.Fatal(err)
	}
	job := func(in rnuca.Input) rnuca.Job {
		return rnuca.Job{Input: in, Designs: []rnuca.DesignID{rnuca.DesignRNUCA},
			Options: rnuca.RunOptions{Warm: 1000, Measure: 2000}}
	}

	seq, ok := resultcache.JobKey(job(rnuca.FromTrace(path).Window(10, 100)))
	if !ok {
		t.Fatal("sequential replay job not keyable")
	}
	sh, ok := resultcache.JobKey(job(rnuca.FromTrace(path).Window(10, 100).Sharded(8)))
	if !ok || sh != seq {
		t.Fatalf("sharded key differs from sequential:\n  seq %s\n  sh  %s", seq, sh)
	}

	dig, err := rnuca.FromTrace(path).Digest()
	if err != nil {
		t.Fatal(err)
	}
	corp, ok := resultcache.JobKey(job(rnuca.FromCorpusRef(dig).Window(10, 100)))
	if !ok || corp != seq {
		t.Fatalf("corpus key differs from trace key for identical content:\n  trace  %s\n  corpus %s", seq, corp)
	}
}

// A canceled context stops a run mid-simulation: Job.Run returns
// promptly with the context error and the partial result accumulated
// so far. (CI runs this under -race: the cancel fires from the
// engine's own progress callback while batched engines may run
// concurrently.)
func TestJobRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	job := rnuca.Job{
		Input:   rnuca.FromWorkload(rnuca.OLTPDB2()),
		Designs: []rnuca.DesignID{rnuca.DesignShared},
		Options: rnuca.RunOptions{
			Warm:    1000,
			Measure: 50_000_000, // hours of work if not canceled
			Progress: func(done, total int) {
				if done > 2000 {
					once.Do(cancel)
				}
			},
		},
	}
	start := time.Now()
	r, err := job.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v; the engine must stop at the next progress poll", elapsed)
	}
	if r.Refs == 0 {
		t.Fatal("canceled run returned no partial result")
	}
	if r.Refs >= 50_000_000 {
		t.Fatal("run completed despite cancellation")
	}
}

// Job.Validate turns the old panic-on-bad-spec paths into errors.
func TestJobValidationErrors(t *testing.T) {
	ctx := context.Background()
	w := rnuca.OLTPDB2()
	cases := []struct {
		name string
		job  rnuca.Job
		want string
	}{
		{"no input", rnuca.Job{Designs: []rnuca.DesignID{"R"}}, "no input"},
		{"no designs", rnuca.Job{Input: rnuca.FromWorkload(w)}, "no designs"},
		{"unknown design", rnuca.Job{Input: rnuca.FromWorkload(w), Designs: []rnuca.DesignID{"X"}}, "unknown design"},
		{"negative warm", rnuca.Job{Input: rnuca.FromWorkload(w), Designs: []rnuca.DesignID{"R"},
			Options: rnuca.RunOptions{Warm: -1}}, "negative"},
		{"window on workload", rnuca.Job{Input: rnuca.FromWorkload(w).Window(1, 2),
			Designs: []rnuca.DesignID{"R"}}, "Window on a workload input"},
		{"sharded on source", rnuca.Job{
			Input:   rnuca.FromSource(func(batch int) rnuca.RefSource { return nil }).Sharded(4),
			Designs: []rnuca.DesignID{"R"}}, "Sharded on a source input"},
		{"unbound corpus", rnuca.Job{Input: rnuca.FromCorpusRef("some-name"),
			Designs: []rnuca.DesignID{"R"}}, "unbound"},
		{"bare source without config", rnuca.Job{
			Input:   rnuca.FromSource(func(batch int) rnuca.RefSource { return nil }),
			Designs: []rnuca.DesignID{"R"}}, "ForWorkload"},
		{"multi-design Run", rnuca.Job{Input: rnuca.FromWorkload(w),
			Designs: []rnuca.DesignID{"P", "R"}}, "use Compare"},
	}
	for _, tc := range cases {
		_, err := tc.job.Run(ctx)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// The wire shorthands decode: a catalog name stands in for a full
// workload spec, a bare string for a corpus reference object.
func TestJobWireShorthands(t *testing.T) {
	var j rnuca.Job
	if err := json.Unmarshal([]byte(`{"input":{"workload":"OLTP-DB2"},"designs":["R"]}`), &j); err != nil {
		t.Fatal(err)
	}
	w, err := j.Input.Workload()
	if err != nil || w.Name != "OLTP-DB2" || w.Cores != 16 {
		t.Fatalf("workload shorthand resolved to %+v (%v)", w, err)
	}
	if err := json.Unmarshal([]byte(`{"input":{"workload":"No-Such"},"designs":["R"]}`), &j); err == nil {
		t.Fatal("unknown workload name decoded without error")
	}
	if err := json.Unmarshal([]byte(`{"input":{"corpus":"oltp"},"designs":["R"]}`), &j); err != nil {
		t.Fatal(err)
	}
	if j.Input.Kind() != rnuca.InputCorpus {
		t.Fatalf("corpus shorthand decoded as %q", j.Input.Kind())
	}
}

// Job.Compare over a trace yields the same per-design results as
// individual runs, and returns partial results plus the context error
// when canceled.
func TestJobCompare(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cmp.rnt")
	rec := rnuca.Job{
		Input:   rnuca.FromWorkload(rnuca.MIX()),
		Designs: []rnuca.DesignID{rnuca.DesignRNUCA},
		Options: rnuca.RunOptions{Warm: 4_000, Measure: 12_000},
	}
	if _, err := rec.Record(context.Background(), path); err != nil {
		t.Fatal(err)
	}
	job := rnuca.Job{
		Input:   rnuca.FromTrace(path),
		Designs: []rnuca.DesignID{rnuca.DesignPrivate, rnuca.DesignShared},
	}
	cmp, err := job.Compare(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range job.Designs {
		single, err := job.WithDesign(id).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		// Result carries a non-comparable Timing slice (empty here — no
		// trace in the context), so compare the measured parts.
		if cmp[id].Result != single.Result ||
			cmp[id].CPIMean != single.CPIMean || cmp[id].CPICI != single.CPICI {
			t.Fatalf("%s: Compare result differs from single Run", id)
		}
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := job.Compare(canceled); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Compare err = %v", err)
	}
}
