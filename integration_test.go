package rnuca_test

import (
	"testing"

	"rnuca"
	"rnuca/internal/cache"
	"rnuca/internal/design"
	"rnuca/internal/sim"
	"rnuca/internal/workload"
)

// Full-pipeline integration: every design runs a real workload through the
// engine, the chassis audit passes afterwards, and the results carry
// coherent accounting.
func TestIntegrationAllDesignsAllAudits(t *testing.T) {
	mks := map[string]func(*sim.Chassis) sim.Design{
		"private":   func(ch *sim.Chassis) sim.Design { return design.NewPrivate(ch) },
		"broadcast": func(ch *sim.Chassis) sim.Design { return design.NewPrivateBroadcast(ch) },
		"shared":    func(ch *sim.Chassis) sim.Design { return design.NewShared(ch) },
		"rnuca":     func(ch *sim.Chassis) sim.Design { return design.NewReactive(ch) },
		"ideal":     func(ch *sim.Chassis) sim.Design { return design.NewIdeal(ch) },
		"asr-0.5":   func(ch *sim.Chassis) sim.Design { return design.NewASR(ch, 0.5, 99) },
	}
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			w := rnuca.OLTPDB2()
			cfg := rnuca.ConfigFor(w)
			ch := sim.NewChassis(cfg)
			d := mk(ch)
			eng := sim.NewEngine(ch, d, workload.Streams(w))
			eng.OffChipMLP = w.OffChipMLP
			res := eng.Run(10_000, 30_000)

			if res.CPI() <= 1 {
				t.Fatalf("CPI %v", res.CPI())
			}
			total := 0.0
			for _, c := range res.CPIStack {
				if c < 0 {
					t.Fatalf("negative bucket in %v", res.CPIStack)
				}
				total += c
			}
			if total < res.CPI()*0.999 || total > res.CPI()*1.001 {
				t.Fatalf("bucket sum %v != CPI %v", total, res.CPI())
			}
			if err := ch.Audit(); err != nil {
				t.Fatalf("audit: %v", err)
			}
		})
	}
}

// The migrating mix must run cleanly through R-NUCA with a positive but
// small re-classification share, and pages must keep their private
// classification across migrations (the OS re-own path, not demotion).
func TestIntegrationMigration(t *testing.T) {
	w := workload.MIXMigrating()
	cfg := rnuca.ConfigFor(w)
	ch := sim.NewChassis(cfg)
	d := design.NewReactive(ch)
	eng := sim.NewEngine(ch, d, workload.Streams(w))
	eng.OffChipMLP = w.OffChipMLP
	res := eng.Run(64_000, 192_000)

	if d.ReclassCount() == 0 {
		t.Fatal("no re-classifications under migration")
	}
	if res.CPIStack[sim.BucketReclass] <= 0 {
		t.Fatal("no reclassification cost charged")
	}
	if share := res.CPIStack[sim.BucketReclass] / res.CPI(); share > 0.25 {
		t.Fatalf("reclassification share %.2f implausibly high", share)
	}
	if err := ch.Audit(); err != nil {
		t.Fatal(err)
	}
	// Private pages must remain private (owned by migrated threads), not
	// degrade to shared: private placements should still dominate.
	counts := d.OS().Table.CountByClass()
	if counts[2] /* SharedData */ > counts[1] /* Private */ {
		t.Fatalf("migration demoted pages to shared: %v", counts)
	}
}

// Determinism across the whole stack: identical runs produce identical
// results, including traffic counters.
func TestIntegrationBitIdentical(t *testing.T) {
	run := func() sim.Result {
		w := rnuca.Apache()
		ch := sim.NewChassis(rnuca.ConfigFor(w))
		d := design.NewReactive(ch)
		eng := sim.NewEngine(ch, d, workload.Streams(w))
		eng.OffChipMLP = w.OffChipMLP
		return eng.Run(20_000, 40_000)
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.OffChipMisses != b.OffChipMisses ||
		a.NetMessages != b.NetMessages || a.NetFlitHops != b.NetFlitHops ||
		a.MisclassifiedAccesses != b.MisclassifiedAccesses {
		t.Fatalf("runs differ:\n%+v\n%+v", a, b)
	}
}

// R-NUCA's architectural guarantee, end to end: after a full mixed run, no
// modifiable block occupies more than one L2 slice, and instruction
// replicas never exceed the chip's replication degree.
func TestIntegrationNoL2CoherenceNeeded(t *testing.T) {
	w := rnuca.OLTPDB2()
	ch := sim.NewChassis(rnuca.ConfigFor(w))
	d := design.NewReactive(ch)
	eng := sim.NewEngine(ch, d, workload.Streams(w))
	eng.Run(30_000, 60_000)

	locs := map[uint64]int{}
	instr := map[uint64]int{}
	for tile := 0; tile < ch.Cfg.Cores; tile++ {
		d.ForEachLine(tile, func(addr uint64, class cache.Class) {
			if class == cache.ClassInstruction {
				instr[addr]++
			} else {
				locs[addr]++
			}
		})
	}
	for addr, n := range locs {
		if n > 1 {
			t.Fatalf("modifiable block %#x in %d slices", addr, n)
		}
	}
	deg := d.Placement().ReplicationDegree(0)
	for addr, n := range instr {
		if n > deg {
			t.Fatalf("instruction block %#x has %d replicas, max %d", addr, n, deg)
		}
	}
}
