package rnuca_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"rnuca"
	"rnuca/internal/cache"
	"rnuca/internal/design"
	"rnuca/internal/sim"
	"rnuca/internal/tracefile"
	"rnuca/internal/workload"
)

// record tees a workload run's references to path via the Job API.
func record(t *testing.T, w rnuca.Workload, id rnuca.DesignID, opt rnuca.RunOptions, path string) rnuca.Result {
	t.Helper()
	job := rnuca.Job{Input: rnuca.FromWorkload(w), Designs: []rnuca.DesignID{id}, Options: opt}
	r, err := job.Record(context.Background(), path)
	if err != nil {
		t.Fatalf("record %s under %s: %v", w.Name, id, err)
	}
	return r
}

// replay runs a single-design replay job over in (a FromTrace input,
// optionally windowed or sharded), surfacing the error for the refusal
// cases the tests probe.
func replay(in rnuca.Input, id rnuca.DesignID, opt rnuca.RunOptions) (rnuca.Result, error) {
	job := rnuca.Job{Input: in, Designs: []rnuca.DesignID{id}, Options: opt}
	return job.Run(context.Background())
}

// Full-pipeline integration: every design runs a real workload through the
// engine, the chassis audit passes afterwards, and the results carry
// coherent accounting.
func TestIntegrationAllDesignsAllAudits(t *testing.T) {
	mks := map[string]func(*sim.Chassis) sim.Design{
		"private":   func(ch *sim.Chassis) sim.Design { return design.NewPrivate(ch) },
		"broadcast": func(ch *sim.Chassis) sim.Design { return design.NewPrivateBroadcast(ch) },
		"shared":    func(ch *sim.Chassis) sim.Design { return design.NewShared(ch) },
		"rnuca":     func(ch *sim.Chassis) sim.Design { return design.NewReactive(ch) },
		"ideal":     func(ch *sim.Chassis) sim.Design { return design.NewIdeal(ch) },
		"asr-0.5":   func(ch *sim.Chassis) sim.Design { return design.NewASR(ch, 0.5, 99) },
	}
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			w := rnuca.OLTPDB2()
			cfg := rnuca.ConfigFor(w)
			ch := sim.NewChassis(cfg)
			d := mk(ch)
			eng := sim.NewEngine(ch, d, workload.Streams(w))
			eng.OffChipMLP = w.OffChipMLP
			res := eng.Run(10_000, 30_000)

			if res.CPI() <= 1 {
				t.Fatalf("CPI %v", res.CPI())
			}
			total := 0.0
			for _, c := range res.CPIStack {
				if c < 0 {
					t.Fatalf("negative bucket in %v", res.CPIStack)
				}
				total += c
			}
			if total < res.CPI()*0.999 || total > res.CPI()*1.001 {
				t.Fatalf("bucket sum %v != CPI %v", total, res.CPI())
			}
			if err := ch.Audit(); err != nil {
				t.Fatalf("audit: %v", err)
			}
		})
	}
}

// The migrating mix must run cleanly through R-NUCA with a positive but
// small re-classification share, and pages must keep their private
// classification across migrations (the OS re-own path, not demotion).
func TestIntegrationMigration(t *testing.T) {
	w := workload.MIXMigrating()
	cfg := rnuca.ConfigFor(w)
	ch := sim.NewChassis(cfg)
	d := design.NewReactive(ch)
	eng := sim.NewEngine(ch, d, workload.Streams(w))
	eng.OffChipMLP = w.OffChipMLP
	res := eng.Run(64_000, 192_000)

	if d.ReclassCount() == 0 {
		t.Fatal("no re-classifications under migration")
	}
	if res.CPIStack[sim.BucketReclass] <= 0 {
		t.Fatal("no reclassification cost charged")
	}
	if share := res.CPIStack[sim.BucketReclass] / res.CPI(); share > 0.25 {
		t.Fatalf("reclassification share %.2f implausibly high", share)
	}
	if err := ch.Audit(); err != nil {
		t.Fatal(err)
	}
	// Private pages must remain private (owned by migrated threads), not
	// degrade to shared: private placements should still dominate.
	counts := d.OS().Table.CountByClass()
	if counts[2] /* SharedData */ > counts[1] /* Private */ {
		t.Fatalf("migration demoted pages to shared: %v", counts)
	}
}

// Determinism across the whole stack: identical runs produce identical
// results, including traffic counters.
func TestIntegrationBitIdentical(t *testing.T) {
	run := func() sim.Result {
		w := rnuca.Apache()
		ch := sim.NewChassis(rnuca.ConfigFor(w))
		d := design.NewReactive(ch)
		eng := sim.NewEngine(ch, d, workload.Streams(w))
		eng.OffChipMLP = w.OffChipMLP
		return eng.Run(20_000, 40_000)
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.OffChipMisses != b.OffChipMisses ||
		a.NetMessages != b.NetMessages || a.NetFlitHops != b.NetFlitHops ||
		a.MisclassifiedAccesses != b.MisclassifiedAccesses {
		t.Fatalf("runs differ:\n%+v\n%+v", a, b)
	}
}

// Trace capture/replay, end to end: recording an OLTP run under R-NUCA
// and replaying the trace must reproduce the live-generated Result bit
// for bit — same CPI stack, miss counts, and traffic — and the trace
// header must carry the run's provenance.
func TestIntegrationRecordReplay(t *testing.T) {
	w := rnuca.OLTPDB2()
	opt := rnuca.RunOptions{Warm: 5_000, Measure: 15_000}
	path := filepath.Join(t.TempDir(), "oltp.rnt")

	live := run(t, w, rnuca.DesignRNUCA, opt)
	rec := record(t, w, rnuca.DesignRNUCA, opt, path)
	if rec.Result != live.Result {
		t.Fatalf("recording run diverged from live run:\n%+v\n%+v", rec.Result, live.Result)
	}

	f, err := tracefile.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	hdr := f.Header()
	f.Close()
	if hdr.Workload != w.Name || hdr.Design != "R" || hdr.Cores != w.Cores {
		t.Fatalf("header provenance %+v", hdr)
	}
	if want := uint64(opt.Warm + opt.Measure); hdr.Refs != want {
		t.Fatalf("header declares %d refs, run consumed %d", hdr.Refs, want)
	}

	rep, err := replay(rnuca.FromTrace(path), rnuca.DesignRNUCA, rnuca.RunOptions{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Result != live.Result {
		t.Fatalf("replay diverged from live run:\n%+v\n%+v", rep.Result, live.Result)
	}

	// A different design replays the same trace without error (its result
	// legitimately differs from its own live run — the reference schedule
	// is the recorded one).
	if _, err := replay(rnuca.FromTrace(path), rnuca.DesignShared, rnuca.RunOptions{}); err != nil {
		t.Fatalf("cross-design replay: %v", err)
	}

	// A replay asking for more refs than the trace holds would recycle
	// recorded references; it must be refused up front.
	if _, err := replay(rnuca.FromTrace(path), rnuca.DesignRNUCA, rnuca.RunOptions{Measure: 50_000}); err == nil {
		t.Fatal("oversized replay accepted")
	}

	// A truncated trace must fail the replay with an error, never panic
	// or silently loop over the readable prefix.
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.rnt")
	if err := os.WriteFile(trunc, whole[:len(whole)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replay(rnuca.FromTrace(trunc), rnuca.DesignRNUCA, rnuca.RunOptions{}); err == nil {
		t.Fatal("truncated trace replayed without error")
	}
}

// Sharded and windowed replay over an indexed v2 trace: fanning chunk
// decoding across workers must reproduce the sequential replay's Result
// bit for bit (the simulation consumes the same refs in the same order),
// windows must replay without error and differ from full replays only
// through which refs they feed, and Job.Compare must carry the input
// through to every design.
func TestIntegrationShardedWindowedReplay(t *testing.T) {
	w := rnuca.OLTPDB2()
	opt := rnuca.RunOptions{Warm: 10_000, Measure: 30_000}
	path := filepath.Join(t.TempDir(), "oltp.rnt")
	record(t, w, rnuca.DesignRNUCA, opt, path)
	x, err := tracefile.OpenIndexed(path)
	if err != nil {
		t.Fatalf("the recorder no longer writes an indexed trace: %v", err)
	}
	if x.Chunks() < 2 {
		t.Fatalf("want a multi-chunk trace, got %d chunks", x.Chunks())
	}
	x.Close()

	seq, err := replay(rnuca.FromTrace(path), rnuca.DesignRNUCA, rnuca.RunOptions{})
	if err != nil {
		t.Fatalf("sequential replay: %v", err)
	}
	for _, shards := range []int{2, 5} {
		sh, err := replay(rnuca.FromTrace(path).Sharded(shards), rnuca.DesignRNUCA, rnuca.RunOptions{})
		if err != nil {
			t.Fatalf("replay with %d shards: %v", shards, err)
		}
		if sh.Result != seq.Result {
			t.Fatalf("%d-shard replay diverged from sequential:\n%+v\n%+v", shards, sh.Result, seq.Result)
		}
	}

	// A window over the whole trace with the same split is the same run.
	whole, err := replay(rnuca.FromTrace(path).Window(0, uint64(opt.Warm+opt.Measure)), rnuca.DesignRNUCA,
		rnuca.RunOptions{Warm: opt.Warm, Measure: opt.Measure})
	if err != nil {
		t.Fatalf("whole-trace window replay: %v", err)
	}
	if whole.Result != seq.Result {
		t.Fatalf("whole-trace window diverged:\n%+v\n%+v", whole.Result, seq.Result)
	}

	// A mid-trace window replays cleanly, sharded or not, with identical
	// results between the two decode paths.
	winIn := rnuca.FromTrace(path).Window(10_000, 20_000)
	win, err := replay(winIn, rnuca.DesignRNUCA, rnuca.RunOptions{})
	if err != nil {
		t.Fatalf("window replay: %v", err)
	}
	winSh, err := replay(winIn.Sharded(3), rnuca.DesignRNUCA, rnuca.RunOptions{})
	if err != nil {
		t.Fatalf("sharded window replay: %v", err)
	}
	if win.Result != winSh.Result {
		t.Fatalf("sharded window diverged:\n%+v\n%+v", winSh.Result, win.Result)
	}
	if win.Refs == 0 {
		t.Fatal("window replay measured nothing")
	}

	// Windows and shards flow through the multi-design comparison.
	cmpJob := rnuca.Job{
		Input:   rnuca.FromTrace(path).Window(5_000, 15_000).Sharded(2),
		Designs: []rnuca.DesignID{rnuca.DesignRNUCA, rnuca.DesignShared},
	}
	cmp, err := cmpJob.Compare(context.Background())
	if err != nil {
		t.Fatalf("sharded windowed compare: %v", err)
	}
	if len(cmp) != 2 {
		t.Fatalf("compare returned %d results", len(cmp))
	}

	// Asking for more refs than the window holds is refused, like
	// oversized whole-trace replays.
	if _, err := replay(rnuca.FromTrace(path).Window(0, 10_000), rnuca.DesignRNUCA,
		rnuca.RunOptions{Measure: 20_000}); err == nil {
		t.Fatal("oversized window replay accepted")
	}
}

// R-NUCA's architectural guarantee, end to end: after a full mixed run, no
// modifiable block occupies more than one L2 slice, and instruction
// replicas never exceed the chip's replication degree.
func TestIntegrationNoL2CoherenceNeeded(t *testing.T) {
	w := rnuca.OLTPDB2()
	ch := sim.NewChassis(rnuca.ConfigFor(w))
	d := design.NewReactive(ch)
	eng := sim.NewEngine(ch, d, workload.Streams(w))
	eng.Run(30_000, 60_000)

	locs := map[uint64]int{}
	instr := map[uint64]int{}
	for tile := 0; tile < ch.Cfg.Cores; tile++ {
		d.ForEachLine(tile, func(addr uint64, class cache.Class) {
			if class == cache.ClassInstruction {
				instr[addr]++
			} else {
				locs[addr]++
			}
		})
	}
	for addr, n := range locs {
		if n > 1 {
			t.Fatalf("modifiable block %#x in %d slices", addr, n)
		}
	}
	deg := d.Placement().ReplicationDegree(0)
	for addr, n := range instr {
		if n > deg {
			t.Fatalf("instruction block %#x has %d replicas, max %d", addr, n, deg)
		}
	}
}
