// Package rnuca is a from-scratch Go reproduction of
//
//	Hardavellas, Ferdman, Falsafi, Ailamaki.
//	"Reactive NUCA: Near-Optimal Block Placement and Replication in
//	Distributed Caches." ISCA 2009.
//
// It provides the R-NUCA cache design (OS-cooperative page classification,
// rotational interleaving, clustered replication) together with every
// substrate the paper's evaluation needs: a tiled-CMP timing model with a
// 2-D folded-torus NoC, set-associative cache structures, a full-map MOSI
// directory, the OS page-classification layer, the four competing designs
// (private, ASR, shared, ideal), statistical workload generators
// calibrated to the paper's characterization, and the trace analyses and
// benchmark harness that regenerate every figure and table.
//
// # The Job API
//
// Every simulation is described by a Job: an Input saying where the
// reference stream comes from, the designs to evaluate, and run
// options. Jobs execute under a context.Context, which is the
// cancellation path, and report failures as errors.
//
//	job := rnuca.Job{
//	    Input:   rnuca.FromWorkload(rnuca.OLTPDB2()),
//	    Designs: []rnuca.DesignID{rnuca.DesignRNUCA},
//	}
//	res, err := job.Run(context.Background())
//	if err != nil { ... }
//	fmt.Printf("CPI %.3f, off-chip misses %d\n", res.CPI(), res.OffChipMisses)
//
// Compare designs the way Figure 12 does:
//
//	job.Designs = rnuca.AllDesigns()
//	cmp, err := job.Compare(ctx)
//	fmt.Printf("R-NUCA speedup over private: %+.1f%%\n",
//	    100*cmp[rnuca.DesignRNUCA].Speedup(cmp[rnuca.DesignPrivate].Result))
//
// Inputs carry the knobs that are legal for their kind and no others:
// FromWorkload(w) generates references statistically; FromTrace(path)
// replays a recording, optionally .Window(start, n) sampling a record
// range and .Sharded(n) fanning chunk decode across workers;
// FromCorpus(store, ref) replays a content-addressed corpus object;
// FromSource(fn) plugs in any reference stream. Record a generated
// run for later replay with Job.Record — a same-design replay
// reproduces the recording run's Result bit for bit.
//
// A Job has exactly one canonical JSON encoding (Job.MarshalJSON): it
// is the wire format of the rnuca-serve job service (POST /v1/jobs)
// and the basis of result-cache keys (internal/resultcache), with
// everything that provably cannot change the Result — decode
// sharding, progress observation — excluded by construction.
//
// Cancellation: pass a cancelable context to Run/Compare; engines
// observe it every few thousand simulated references through the same
// plumbing that feeds the RunOptions.Progress observation hook, and a
// canceled run returns its partial Result with the context's error.
//
// Attach an observability trace (internal/obs) to the context and a
// run records per-stage spans — replay setup, per-cell simulation,
// result fold — and reports the aggregate breakdown in
// Result.Timing; rnuca-serve exposes the same spans per job at
// GET /v1/jobs/{id}/trace.
//
// Externally captured traces enter through internal/ingest:
// rnuca-trace convert turns Dinero/ChampSim-style/CSV address streams
// into indexed v2 corpora with page-grain class inference, and
// TraceWorkload synthesizes a replayable workload from any corpus
// header. For serving, cmd/rnuca-serve exposes the whole pipeline as
// a long-running HTTP job service (internal/serve) over a
// content-addressed corpus store (internal/corpus), memoizing results
// behind a singleflight LRU (internal/resultcache) keyed by canonical
// Job encodings.
package rnuca

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"

	"rnuca/internal/design"
	"rnuca/internal/obs"
	"rnuca/internal/obs/flight"
	"rnuca/internal/sim"
	"rnuca/internal/stats"
	"rnuca/internal/trace"
	"rnuca/internal/tracefile"
	"rnuca/internal/workload"
)

// RefSource is re-exported so callers can plug external reference
// streams into FromSource without importing internal packages.
type RefSource = trace.RefSource

// DesignID names one of the five evaluated L2 organizations.
type DesignID string

// The five designs of §5.1.
const (
	DesignPrivate DesignID = "P"
	DesignASR     DesignID = "A"
	DesignShared  DesignID = "S"
	DesignRNUCA   DesignID = "R"
	DesignIdeal   DesignID = "I"
)

// AllDesigns returns the designs in the paper's P/A/S/R/I order.
func AllDesigns() []DesignID {
	return []DesignID{DesignPrivate, DesignASR, DesignShared, DesignRNUCA, DesignIdeal}
}

// Workload re-exports the workload specification type.
type Workload = workload.Spec

// Re-exported workload constructors (Table 1 right + §3.1).
var (
	OLTPDB2    = workload.OLTPDB2
	OLTPOracle = workload.OLTPOracle
	Apache     = workload.Apache
	DSSQry6    = workload.DSSQry6
	DSSQry8    = workload.DSSQry8
	DSSQry13   = workload.DSSQry13
	Em3d       = workload.Em3d
	MIX        = workload.MIX
	Primary    = workload.Primary
	Extended   = workload.Extended
)

// runOpts is the internal run description every execution helper
// consumes: the job's RunOptions lowered together with the knobs that
// live elsewhere in the public API (the input's window/shards, the
// context-polling progress callback, the span-collecting context).
type runOpts struct {
	// Warm is the number of chip-wide references run before measurement
	// (cache/TLB/page-table warmup, like the paper's checkpoint warming).
	// 0 means the default.
	Warm int
	// Measure is the number of measured references. 0 means the default.
	Measure int
	// Batches > 1 runs that many independently-seeded measurements and
	// reports mean CPI with a 95% confidence interval, mirroring the
	// paper's sampling methodology. 0 or 1 means a single batch.
	Batches int
	// InstrClusterSize overrides R-NUCA's instruction cluster size
	// (Figure 11 ablation). 0 means the configuration default (4).
	InstrClusterSize int
	// PrivateClusterSize > 1 enables the §4.4 extension: R-NUCA spills
	// private data over fixed-center clusters of this many slices.
	PrivateClusterSize int
	// Config overrides the CMP configuration. Nil selects Config16 or
	// Config8 to match the workload's core count, as the paper does.
	Config *sim.Config
	// Source, when non-nil, overrides the workload's statistical
	// generator: batch b's references come from Source(b), demultiplexed
	// per core by each ref's Core field; external ingesters can supply
	// any RefSource. Finite sources loop per core once exhausted if they
	// implement trace.Rewinder. With Source set, DesignASR runs its
	// adaptive variant only (the best-of-six sweep would pull each
	// batch's source six times); use Replay for trace-driven ASR
	// best-of-six.
	Source func(batch int) RefSource

	// Progress, when non-nil, is called by each engine roughly every
	// few thousand consumed references with the engine's running count
	// and the run's per-engine total (Warm+Measure); returning false
	// stops the run early, leaving a partial Result. Observation cannot
	// perturb the deterministic timing model, so an observed run that
	// completes is bit-identical to an unobserved one. With Batches > 1
	// the engines run concurrently, so the callback must be safe for
	// concurrent use. New code observes with RunOptions.Progress and
	// cancels with a context instead.
	Progress func(done, total int) bool

	// Flight, when non-nil, attaches a flight recorder to batch 0's
	// engine (one recorder per run helper invocation); like Progress it
	// is pure observation and result-neutral.
	Flight *flight.Config
	// flightRec is the recorder instance a batch helper hands the one
	// engine that drives it.
	flightRec *flight.Recorder

	// Shards, when > 1, fans each replay batch's trace decoding across
	// that many parallel workers (replay only; requires a v2 indexed
	// trace). The simulation itself stays sequential and consumes refs
	// in exact file order, so a sharded replay's Result is bit-identical
	// to a sequential one — only chunk decompression overlaps it.
	Shards int
	// WindowStart and WindowRefs restrict a replay to the trace records
	// [WindowStart, WindowStart+WindowRefs), sampling a region of a long
	// trace without scanning from the start (replay only; requires a v2
	// indexed trace). WindowRefs 0 with WindowStart > 0 means "to the
	// end of the trace". When a window is set and Warm/Measure are
	// unset, Warm defaults to a fifth of the window and Measure to the
	// remainder, instead of the recording run's split.
	WindowStart, WindowRefs uint64

	// ctx carries the run's cancellation and any obs.Trace collecting
	// per-stage spans; helpers instrument against it unconditionally
	// (spans no-op without a trace).
	//rnuca:ctx-ok runOpts is the run's internal plumbing record, built per call by lower() and dead when the run returns
	ctx context.Context
}

// windowed reports whether replay options restrict the trace to a
// record window.
func (o runOpts) windowed() bool { return o.WindowStart > 0 || o.WindowRefs > 0 }

func (o runOpts) withDefaults(w Workload) runOpts {
	if o.Warm == 0 {
		o.Warm = 200_000
	}
	if o.Measure == 0 {
		o.Measure = 400_000
	}
	if o.Batches == 0 {
		o.Batches = 1
	}
	if o.Config == nil {
		cfg := ConfigFor(w)
		o.Config = &cfg
	}
	if o.InstrClusterSize != 0 {
		cfg := *o.Config
		cfg.InstrClusterSize = o.InstrClusterSize
		o.Config = &cfg
	}
	return o
}

// ConfigFor returns the Table 1 configuration matching a workload's core
// count: the 16-core CMP for server/scientific workloads, the 8-core CMP
// for multi-programmed ones.
func ConfigFor(w Workload) sim.Config {
	if w.Cores == 8 {
		return sim.Config8()
	}
	cfg := sim.Config16()
	if w.Cores != cfg.Cores {
		// Non-standard core counts (ingested corpora mostly) build a
		// square-ish grid, and the instruction cluster size is clamped
		// to the largest power of two rotational interleaving supports
		// on it (n <= tiles, and n divides the width or vice versa).
		cfg.Cores = w.Cores
		cfg.GridW, cfg.GridH = gridFor(w.Cores)
		for n := cfg.InstrClusterSize; n > 1; n /= 2 {
			if n <= w.Cores && (cfg.GridW%n == 0 || n%cfg.GridW == 0) {
				cfg.InstrClusterSize = n
				break
			}
			cfg.InstrClusterSize = n / 2
		}
	}
	return cfg
}

func gridFor(n int) (int, int) {
	w := 1
	for w*w < n {
		w++
	}
	for n%w != 0 {
		w++
	}
	return w, n / w
}

// StageTiming is one stage of a run's wall-clock breakdown
// (re-exported from internal/obs).
type StageTiming = obs.StageTiming

// TimelineConfig configures the flight recorder (re-exported from
// internal/obs/flight): epoch length in measured references, stored
// epoch cap, and an optional live per-epoch observer.
type TimelineConfig = flight.Config

// Timeline is the flight recorder's product: a delta-encoded per-epoch
// history of the run (re-exported from internal/obs/flight).
type Timeline = flight.Timeline

// TimelineEpoch is one timeline entry (re-exported from
// internal/obs/flight).
type TimelineEpoch = flight.Epoch

// Result is one design's measured performance on one workload.
//
//rnuca:wire
type Result struct {
	sim.Result
	// CPIMean/CPICI are the batch statistics when Batches > 1
	// (CPIMean equals Result.CPI() for single batches).
	CPIMean float64 `json:"CPIMean"`
	CPICI   float64 `json:"CPICI"`
	// Timing is the per-stage wall-clock breakdown, populated only
	// when the run's context carries an obs.Trace. It is diagnostic
	// metadata, not measurement: it is excluded from the JSON encoding
	// so observed and unobserved Results stay byte-identical on the
	// wire and in result-cache comparisons.
	Timing []StageTiming `json:"-"`
	// Timeline is the flight recorder's per-epoch history, populated
	// only when RunOptions.Timeline is set. Like Timing it is
	// observation, not measurement — excluded from the JSON encoding so
	// recorded and unrecorded Results stay byte-identical on the wire
	// and in result-cache comparisons. With Batches > 1 the timeline
	// covers batch 0 (batches are independently-seeded repetitions, not
	// phases of one run); for ASR best-of-six it is the winning
	// variant's.
	Timeline *Timeline `json:"-"`
}

// NewDesign constructs a design instance on a chassis. ASR here is the
// adaptive variant; Job.Run applies the paper's best-of-six
// methodology for DesignASR. Unknown IDs panic; Job.Validate rejects
// them with an error first.
func NewDesign(id DesignID, ch *sim.Chassis) sim.Design {
	switch id {
	case DesignPrivate:
		return design.NewPrivate(ch)
	case DesignASR:
		return design.NewAdaptiveASR(ch, 0xA5A5)
	case DesignShared:
		return design.NewShared(ch)
	case DesignRNUCA:
		return design.NewReactive(ch)
	case DesignIdeal:
		return design.NewIdeal(ch)
	default:
		panic(fmt.Sprintf("rnuca: unknown design %q", id))
	}
}

// designMaker returns the design constructor Job.Run would use for id,
// with ASR fixed to the adaptive variant (the best-of-six sweep is
// handled by runASRBest, which generator-driven runs still go through).
func designMaker(id DesignID, opt runOpts) func(*sim.Chassis) sim.Design {
	if id == DesignRNUCA && opt.PrivateClusterSize > 1 {
		size := opt.PrivateClusterSize
		return func(ch *sim.Chassis) sim.Design {
			return design.NewReactiveWithPrivateClusters(ch, size)
		}
	}
	return func(ch *sim.Chassis) sim.Design { return NewDesign(id, ch) }
}

// runOne executes a single simulation over the given per-core streams.
func runOne(ws Workload, opt runOpts, mk func(*sim.Chassis) sim.Design, streams []trace.Stream) sim.Result {
	sp := obs.StartSpan(opt.ctx, "sim.cell")
	defer sp.End()
	ch := sim.NewChassis(*opt.Config)
	d := mk(ch)
	sp.SetAttr("design", d.Name())
	sp.SetAttr("workload", ws.Name)
	eng := sim.NewEngine(ch, d, streams)
	eng.OffChipMLP = ws.OffChipMLP
	eng.Flight = opt.flightRec
	hookProgress(eng, opt)
	res := eng.Run(opt.Warm, opt.Measure)
	res.Workload = ws.Name
	return res
}

// runOneSource is runOne fed by a multiplexed RefSource.
func runOneSource(ws Workload, opt runOpts, mk func(*sim.Chassis) sim.Design, src trace.RefSource) sim.Result {
	sp := obs.StartSpan(opt.ctx, "sim.cell")
	defer sp.End()
	ch := sim.NewChassis(*opt.Config)
	d := mk(ch)
	sp.SetAttr("design", d.Name())
	sp.SetAttr("workload", ws.Name)
	eng := sim.NewEngineSource(ch, d, src)
	eng.OffChipMLP = ws.OffChipMLP
	eng.Flight = opt.flightRec
	hookProgress(eng, opt)
	res := eng.Run(opt.Warm, opt.Measure)
	res.Workload = ws.Name
	return res
}

// hookProgress attaches the options' progress observer to an engine.
func hookProgress(eng *sim.Engine, opt runOpts) {
	if opt.Progress == nil {
		return
	}
	total := opt.Warm + opt.Measure
	cb := opt.Progress
	eng.Progress = func(done int) bool { return cb(done, total) }
}

// runBatches executes opt.Batches independently-seeded runs and folds
// the results with equal batch weight.
func runBatches(w Workload, opt runOpts, mk func(*sim.Chassis) sim.Design) Result {
	results := make([]sim.Result, opt.Batches)
	rec := newFlightRecorder(opt)
	var cpi stats.Summary
	for b := 0; b < opt.Batches; b++ {
		ws := w
		ws.Seed = w.Seed + uint64(b)*0x9E37
		bo := opt
		if b == 0 {
			bo.flightRec = rec
		}
		if opt.Source != nil {
			results[b] = runOneSource(ws, bo, mk, opt.Source(b))
		} else {
			results[b] = runOne(ws, bo, mk, workload.Streams(ws))
		}
		cpi.Add(results[b].CPI())
	}
	var out Result
	out.Result = fold(opt, results)
	out.CPIMean = cpi.Mean()
	out.CPICI = cpi.CI95()
	if rec != nil {
		out.Timeline = rec.Timeline()
	}
	return out
}

// newFlightRecorder builds the run's flight recorder when the options
// ask for one. Each batch-helper invocation gets its own recorder
// (attached to batch 0's engine), so concurrent cells never share one.
func newFlightRecorder(opt runOpts) *flight.Recorder {
	if opt.Flight == nil {
		return nil
	}
	return flight.NewRecorder(*opt.Flight)
}

// replaySetup validates the trace header and resolves replay options
// against it: for sharded or windowed replays the trace must carry a v2
// chunk index, and a record window rescopes the default Warm/Measure
// split from the recording run's to the window itself.
func replaySetup(path string, opt runOpts) (runOpts, Workload, error) {
	if opt.Source != nil {
		return opt, Workload{}, fmt.Errorf("rnuca: Replay with Options.Source set; the trace is the source")
	}
	f, err := tracefile.Open(path)
	if err != nil {
		return opt, Workload{}, err
	}
	hdr := f.Header()
	f.Close()
	if hdr.Cores < 1 {
		return opt, Workload{}, fmt.Errorf("rnuca: trace %s declares %d cores", path, hdr.Cores)
	}
	w := workloadFor(hdr)

	// available is the record count the replay may consume: the header's
	// declared total (0 = streaming trace of unknown length, exempt from
	// the oversampling check below), narrowed to the window when one is
	// set. Sharded and windowed replays read the exact total from the
	// index footer, which is authoritative even for unpatched headers.
	available := hdr.Refs
	if opt.Shards > 1 || opt.windowed() {
		ix, err := tracefile.OpenIndexed(path)
		if err != nil {
			return opt, Workload{}, fmt.Errorf("rnuca: replaying %s with shards/window: %w", path, err)
		}
		available = ix.Refs()
		ix.Close()
	}
	if opt.windowed() {
		if opt.WindowStart >= available {
			return opt, Workload{}, fmt.Errorf("rnuca: trace %s window starts at record %d of %d",
				path, opt.WindowStart, available)
		}
		if opt.WindowRefs == 0 {
			opt.WindowRefs = available - opt.WindowStart
		}
		if opt.WindowStart+opt.WindowRefs > available {
			return opt, Workload{}, fmt.Errorf("rnuca: trace %s window [%d,%d) outside its %d records",
				path, opt.WindowStart, opt.WindowStart+opt.WindowRefs, available)
		}
		win := opt.WindowRefs
		if win < 5 {
			return opt, Workload{}, fmt.Errorf("rnuca: trace %s window of %d refs too small to replay", path, win)
		}
		if opt.Warm == 0 {
			opt.Warm = int(win / 5)
		}
		if opt.Measure == 0 {
			if uint64(opt.Warm) >= win {
				return opt, Workload{}, fmt.Errorf(
					"rnuca: trace %s window of %d refs leaves nothing to measure after %d warmup", path, win, opt.Warm)
			}
			opt.Measure = int(win) - opt.Warm
		}
		available = win
	} else {
		if opt.Warm == 0 {
			opt.Warm = hdr.Warm
		}
		if opt.Measure == 0 {
			opt.Measure = hdr.Measure
		}
		// Ingested corpora (rnuca-trace convert) record no run split;
		// when the caller sets none either, derive one from the trace
		// length the way windows do: a fifth warms, the rest measures.
		if opt.Warm == 0 && opt.Measure == 0 && available >= 5 {
			n := available
			if n > math.MaxInt32 {
				n = math.MaxInt32
			}
			opt.Warm = int(n / 5)
			opt.Measure = int(n) - opt.Warm
		}
	}
	opt = opt.withDefaults(w)
	if opt.Config.Cores != hdr.Cores {
		return opt, Workload{}, fmt.Errorf("rnuca: trace %s has %d cores, config has %d",
			path, hdr.Cores, opt.Config.Cores)
	}
	// A replay that needs more refs than the trace (or window) holds
	// would recycle recorded references (the demux loops per core);
	// refuse rather than let oversampled results masquerade as a longer
	// run. Traces without a declared count (streaming writers) are
	// exempt — the length is unknowable up front.
	if need := uint64(opt.Warm) + uint64(opt.Measure); available > 0 && need > available {
		return opt, Workload{}, fmt.Errorf(
			"rnuca: trace %s holds %d replayable refs but replay needs %d (warm %d + measure %d); record a longer trace or lower the counts",
			path, available, need, opt.Warm, opt.Measure)
	}
	return opt, w, nil
}

// openReplaySource opens one batch's view of the trace: a plain
// streaming reader by default, an indexed window cursor or parallel
// sharded decoder when the options ask for one. The returned close
// function is safe to call after exhaustion.
func openReplaySource(path string, opt runOpts) (src interface {
	trace.RefSource
	Err() error
}, closeSrc func(), err error) {
	if opt.Shards <= 1 && !opt.windowed() {
		f, err := tracefile.Open(path)
		if err != nil {
			return nil, nil, err
		}
		return f, func() { f.Close() }, nil
	}
	ix, err := tracefile.OpenIndexed(path)
	if err != nil {
		return nil, nil, fmt.Errorf("rnuca: replaying %s with shards/window: %w", path, err)
	}
	start, n := opt.WindowStart, opt.WindowRefs
	if n == 0 {
		n = ix.Refs() - start
	}
	if opt.Shards > 1 {
		p, err := ix.Parallel(opt.Shards, start, n)
		if err != nil {
			ix.Close()
			return nil, nil, err
		}
		return p, func() { p.Close(); ix.Close() }, nil
	}
	c, err := ix.Window(start, n)
	if err != nil {
		ix.Close()
		return nil, nil, err
	}
	return c, func() { ix.Close() }, nil
}

// replayBatches runs opt.Batches replay engines over one trace in
// parallel and folds the results with equal batch weight. Each batch
// opens its own view of the file — sequential, windowed, or sharded per
// the options — so batches never contend on shared reader state.
func replayBatches(path string, w Workload, opt runOpts, mk func(*sim.Chassis) sim.Design) (Result, error) {
	results := make([]sim.Result, opt.Batches)
	errs := make([]error, opt.Batches)
	rec := newFlightRecorder(opt)
	var wg sync.WaitGroup
	for b := 0; b < opt.Batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			// The recorder is single-goroutine: only batch 0 drives it.
			bo := opt
			if b == 0 {
				bo.flightRec = rec
			}
			opt := bo
			src, closeSrc, err := openReplaySource(path, opt)
			if err != nil {
				errs[b] = err
				return
			}
			defer closeSrc()
			// A corrupt or truncated trace surfaces as an error, not a
			// crash: the demux's panics are "trace:"-prefixed, and a
			// reader that failed mid-stream must not let the run pass
			// silently. Panics from anywhere else (engine or design
			// bugs) propagate.
			defer func() {
				p := recover()
				if err := src.Err(); err != nil {
					errs[b] = fmt.Errorf("rnuca: replaying %s: %w", path, err)
					return
				}
				if p == nil {
					return
				}
				if s, ok := p.(string); ok && strings.HasPrefix(s, "trace: ") {
					errs[b] = fmt.Errorf("rnuca: replaying %s: %s", path, s)
					return
				}
				panic(p)
			}()
			results[b] = runOneSource(w, opt, mk, src)
		}(b)
	}
	wg.Wait()
	var cpi stats.Summary
	for b, res := range results {
		if errs[b] != nil {
			return Result{}, errs[b]
		}
		cpi.Add(res.CPI())
	}
	var out Result
	out.Result = fold(opt, results)
	out.CPIMean = cpi.Mean()
	out.CPICI = cpi.CI95()
	if rec != nil {
		out.Timeline = rec.Timeline()
	}
	return out, nil
}

// replayASRBest mirrors runASRBest over a trace: six ASR variants replay
// the same refs, the best CPI is reported.
func replayASRBest(path string, w Workload, opt runOpts) (Result, error) {
	best := Result{}
	bestCPI := 0.0
	for i, mk := range asrVariants() {
		r, err := replayBatches(path, w, opt, mk)
		if err != nil {
			return Result{}, err
		}
		if i == 0 || r.CPI() < bestCPI {
			best, bestCPI = r, r.CPI()
		}
	}
	best.Design = "A"
	return best, nil
}

// TraceWorkload reconstructs the workload a trace file describes: the
// catalog entry when the header's name resolves, otherwise a minimal
// spec carrying the header's core count and timing parameters. It is
// how ingested corpora (rnuca-trace convert), whose workloads exist in
// no catalog, enter the replay and Campaign APIs.
func TraceWorkload(path string) (Workload, error) {
	f, err := tracefile.Open(path)
	if err != nil {
		return Workload{}, err
	}
	hdr := f.Header()
	f.Close()
	if hdr.Cores < 1 {
		return Workload{}, fmt.Errorf("rnuca: trace %s declares %d cores", path, hdr.Cores)
	}
	return workloadFor(hdr), nil
}

// workloadFor reconstructs the workload a trace was recorded from: the
// catalog entry when the name resolves, otherwise a minimal spec carrying
// the header's timing parameters (replay never generates references, so
// footprints and mixes are not needed).
func workloadFor(hdr tracefile.Header) Workload {
	if w, ok := workload.ByName(hdr.Workload); ok {
		return w
	}
	mlp := hdr.OffChipMLP
	if mlp < 1 {
		mlp = 1
	}
	return Workload{
		Name:       hdr.Workload,
		Cores:      hdr.Cores,
		Seed:       hdr.Seed,
		OffChipMLP: mlp,
	}
}

// fold folds independently-seeded batch results with equal weight:
// event counters sum, while the CPI stack and per-class cycle
// breakdowns — per-instruction rates — average over the batch count.
// (The pre-v2 fold averaged pairwise, (a+b)/2 per step, which weighted
// batch b of B by 2^-(B-b) for B > 2.)
func fold(opt runOpts, rs []sim.Result) sim.Result {
	sp := obs.StartSpan(opt.ctx, "result.fold")
	defer sp.End()
	out := rs[0]
	for _, b := range rs[1:] {
		out.Instructions += b.Instructions
		out.Refs += b.Refs
		out.Cycles += b.Cycles
		out.OffChipMisses += b.OffChipMisses
		out.MixedPageAccesses += b.MixedPageAccesses
		out.MisclassifiedAccesses += b.MisclassifiedAccesses
		out.ClassifiedAccesses += b.ClassifiedAccesses
		out.NetMessages += b.NetMessages
		out.NetFlitHops += b.NetFlitHops
		out.NetWaitCycles += b.NetWaitCycles
		for i := range out.CPIStack {
			out.CPIStack[i] += b.CPIStack[i]
		}
		for c := range out.ClassCycles {
			for i := range out.ClassCycles[c] {
				out.ClassCycles[c][i] += b.ClassCycles[c][i]
			}
		}
	}
	if n := float64(len(rs)); n > 1 {
		for i := range out.CPIStack {
			out.CPIStack[i] /= n
		}
		for c := range out.ClassCycles {
			for i := range out.ClassCycles[c] {
				out.ClassCycles[c][i] /= n
			}
		}
	}
	return out
}

// asrVariants returns the six ASR configurations of the paper's §5.1
// methodology: five static replication probabilities plus the adaptive
// controller.
func asrVariants() []func(*sim.Chassis) sim.Design {
	return []func(*sim.Chassis) sim.Design{
		func(ch *sim.Chassis) sim.Design { return design.NewASR(ch, 0, 0xA5A5) },
		func(ch *sim.Chassis) sim.Design { return design.NewASR(ch, 0.25, 0xA5A5) },
		func(ch *sim.Chassis) sim.Design { return design.NewASR(ch, 0.5, 0xA5A5) },
		func(ch *sim.Chassis) sim.Design { return design.NewASR(ch, 0.75, 0xA5A5) },
		func(ch *sim.Chassis) sim.Design { return design.NewASR(ch, 1, 0xA5A5) },
		func(ch *sim.Chassis) sim.Design { return design.NewAdaptiveASR(ch, 0xA5A5) },
	}
}

// runASRBest implements the paper's ASR methodology (§5.1): six variants
// (adaptive plus five static probabilities), report the best-performing.
func runASRBest(w Workload, opt runOpts) Result {
	best := Result{}
	bestCPI := 0.0
	for i, mk := range asrVariants() {
		r := runBatches(w, opt, mk)
		if i == 0 || r.CPI() < bestCPI {
			best, bestCPI = r, r.CPI()
		}
	}
	best.Design = "A"
	return best
}

// SpeedupCI is a matched-pair speedup estimate: both designs run on
// identical per-batch reference streams (same seeds), so each batch
// yields one paired speedup observation; the mean and 95% CI are computed
// over those pairs. This mirrors how the paper's sampling methodology
// puts confidence intervals on the Figure 12 speedups rather than on raw
// CPIs.
type SpeedupCI struct {
	Mean float64
	CI95 float64
	N    int
}

// CompareCI measures the speedup of design a over design b on matched
// batches. Batches defaults to 5 when the option is unset or 1 (a single
// pair has no interval).
func CompareCI(w Workload, a, b DesignID, ro RunOptions) SpeedupCI {
	//rnuca:ctx-ok CompareCI is a ctx-less convenience entry point; cancelable comparisons go through the Job API
	opt := ro.lower(context.Background()).withDefaults(w)
	if opt.Batches < 2 {
		opt.Batches = 5
	}
	var s stats.Summary
	for batch := 0; batch < opt.Batches; batch++ {
		ws := w
		ws.Seed = w.Seed + uint64(batch)*0x9E37
		single := opt
		single.Batches = 1
		ra := runBatches(ws, single, func(ch *sim.Chassis) sim.Design { return NewDesign(a, ch) })
		rb := runBatches(ws, single, func(ch *sim.Chassis) sim.Design { return NewDesign(b, ch) })
		s.Add(ra.Speedup(rb.Result))
	}
	return SpeedupCI{Mean: s.Mean(), CI95: s.CI95(), N: s.N()}
}
