// Package rnuca is a from-scratch Go reproduction of
//
//	Hardavellas, Ferdman, Falsafi, Ailamaki.
//	"Reactive NUCA: Near-Optimal Block Placement and Replication in
//	Distributed Caches." ISCA 2009.
//
// It provides the R-NUCA cache design (OS-cooperative page classification,
// rotational interleaving, clustered replication) together with every
// substrate the paper's evaluation needs: a tiled-CMP timing model with a
// 2-D folded-torus NoC, set-associative cache structures, a full-map MOSI
// directory, the OS page-classification layer, the four competing designs
// (private, ASR, shared, ideal), statistical workload generators
// calibrated to the paper's characterization, and the trace analyses and
// benchmark harness that regenerate every figure and table.
//
// Quick start:
//
//	res := rnuca.Run(rnuca.OLTPDB2(), rnuca.DesignRNUCA, rnuca.Options{})
//	fmt.Printf("CPI %.3f, off-chip misses %d\n", res.CPI(), res.OffChipMisses)
//
// Compare designs the way Figure 12 does:
//
//	cmp := rnuca.Compare(rnuca.OLTPDB2(), rnuca.AllDesigns(), rnuca.Options{})
//	fmt.Printf("R-NUCA speedup over private: %+.1f%%\n",
//	    100*cmp[rnuca.DesignRNUCA].Speedup(cmp[rnuca.DesignPrivate].Result))
package rnuca

import (
	"fmt"

	"rnuca/internal/design"
	"rnuca/internal/sim"
	"rnuca/internal/stats"
	"rnuca/internal/workload"
)

// DesignID names one of the five evaluated L2 organizations.
type DesignID string

// The five designs of §5.1.
const (
	DesignPrivate DesignID = "P"
	DesignASR     DesignID = "A"
	DesignShared  DesignID = "S"
	DesignRNUCA   DesignID = "R"
	DesignIdeal   DesignID = "I"
)

// AllDesigns returns the designs in the paper's P/A/S/R/I order.
func AllDesigns() []DesignID {
	return []DesignID{DesignPrivate, DesignASR, DesignShared, DesignRNUCA, DesignIdeal}
}

// Workload re-exports the workload specification type.
type Workload = workload.Spec

// Re-exported workload constructors (Table 1 right + §3.1).
var (
	OLTPDB2    = workload.OLTPDB2
	OLTPOracle = workload.OLTPOracle
	Apache     = workload.Apache
	DSSQry6    = workload.DSSQry6
	DSSQry8    = workload.DSSQry8
	DSSQry13   = workload.DSSQry13
	Em3d       = workload.Em3d
	MIX        = workload.MIX
	Primary    = workload.Primary
	Extended   = workload.Extended
)

// Options tunes a simulation run. The zero value gives sensible defaults.
type Options struct {
	// Warm is the number of chip-wide references run before measurement
	// (cache/TLB/page-table warmup, like the paper's checkpoint warming).
	// 0 means the default.
	Warm int
	// Measure is the number of measured references. 0 means the default.
	Measure int
	// Batches > 1 runs that many independently-seeded measurements and
	// reports mean CPI with a 95% confidence interval, mirroring the
	// paper's sampling methodology. 0 or 1 means a single batch.
	Batches int
	// InstrClusterSize overrides R-NUCA's instruction cluster size
	// (Figure 11 ablation). 0 means the configuration default (4).
	InstrClusterSize int
	// PrivateClusterSize > 1 enables the §4.4 extension: R-NUCA spills
	// private data over fixed-center clusters of this many slices.
	PrivateClusterSize int
	// Config overrides the CMP configuration. Nil selects Config16 or
	// Config8 to match the workload's core count, as the paper does.
	Config *sim.Config
}

func (o Options) withDefaults(w Workload) Options {
	if o.Warm == 0 {
		o.Warm = 200_000
	}
	if o.Measure == 0 {
		o.Measure = 400_000
	}
	if o.Batches == 0 {
		o.Batches = 1
	}
	if o.Config == nil {
		cfg := ConfigFor(w)
		o.Config = &cfg
	}
	if o.InstrClusterSize != 0 {
		cfg := *o.Config
		cfg.InstrClusterSize = o.InstrClusterSize
		o.Config = &cfg
	}
	return o
}

// ConfigFor returns the Table 1 configuration matching a workload's core
// count: the 16-core CMP for server/scientific workloads, the 8-core CMP
// for multi-programmed ones.
func ConfigFor(w Workload) sim.Config {
	if w.Cores == 8 {
		return sim.Config8()
	}
	cfg := sim.Config16()
	if w.Cores != cfg.Cores {
		// Non-standard core counts build a square-ish grid.
		cfg.Cores = w.Cores
		cfg.GridW, cfg.GridH = gridFor(w.Cores)
	}
	return cfg
}

func gridFor(n int) (int, int) {
	w := 1
	for w*w < n {
		w++
	}
	for n%w != 0 {
		w++
	}
	return w, n / w
}

// Result is one design's measured performance on one workload.
type Result struct {
	sim.Result
	// CPIMean/CPICI are the batch statistics when Options.Batches > 1
	// (CPIMean equals Result.CPI() for single batches).
	CPIMean float64
	CPICI   float64
}

// NewDesign constructs a design instance on a chassis. ASR here is the
// adaptive variant; use RunASRBest for the paper's best-of-six
// methodology.
func NewDesign(id DesignID, ch *sim.Chassis) sim.Design {
	switch id {
	case DesignPrivate:
		return design.NewPrivate(ch)
	case DesignASR:
		return design.NewAdaptiveASR(ch, 0xA5A5)
	case DesignShared:
		return design.NewShared(ch)
	case DesignRNUCA:
		return design.NewReactive(ch)
	case DesignIdeal:
		return design.NewIdeal(ch)
	default:
		panic(fmt.Sprintf("rnuca: unknown design %q", id))
	}
}

// RunWith simulates one workload on a custom design built by mk — used by
// the experiment harness for ASR variants and design ablations.
func RunWith(w Workload, opt Options, mk func(*sim.Chassis) sim.Design) Result {
	opt = opt.withDefaults(w)
	return runBatches(w, opt, mk)
}

// Run simulates one workload on one design.
func Run(w Workload, id DesignID, opt Options) Result {
	opt = opt.withDefaults(w)
	if id == DesignASR {
		return runASRBest(w, opt)
	}
	if id == DesignRNUCA && opt.PrivateClusterSize > 1 {
		size := opt.PrivateClusterSize
		return runBatches(w, opt, func(ch *sim.Chassis) sim.Design {
			return design.NewReactiveWithPrivateClusters(ch, size)
		})
	}
	return runBatches(w, opt, func(ch *sim.Chassis) sim.Design { return NewDesign(id, ch) })
}

// runBatches executes opt.Batches independently-seeded runs and folds the
// results.
func runBatches(w Workload, opt Options, mk func(*sim.Chassis) sim.Design) Result {
	var out Result
	var cpi stats.Summary
	for b := 0; b < opt.Batches; b++ {
		ws := w
		ws.Seed = w.Seed + uint64(b)*0x9E37
		ch := sim.NewChassis(*opt.Config)
		d := mk(ch)
		eng := sim.NewEngine(ch, d, workload.Streams(ws))
		eng.OffChipMLP = ws.OffChipMLP
		res := eng.Run(opt.Warm, opt.Measure)
		res.Workload = w.Name
		cpi.Add(res.CPI())
		if b == 0 {
			out.Result = res
		} else {
			out.Result = mergeResults(out.Result, res)
		}
	}
	out.CPIMean = cpi.Mean()
	out.CPICI = cpi.CI95()
	return out
}

// mergeResults averages two results' accumulators (batch means).
func mergeResults(a, b sim.Result) sim.Result {
	a.Instructions += b.Instructions
	a.Refs += b.Refs
	a.Cycles += b.Cycles
	a.OffChipMisses += b.OffChipMisses
	a.MixedPageAccesses += b.MixedPageAccesses
	a.MisclassifiedAccesses += b.MisclassifiedAccesses
	a.ClassifiedAccesses += b.ClassifiedAccesses
	a.NetMessages += b.NetMessages
	a.NetFlitHops += b.NetFlitHops
	a.NetWaitCycles += b.NetWaitCycles
	for i := range a.CPIStack {
		a.CPIStack[i] = (a.CPIStack[i] + b.CPIStack[i]) / 2
	}
	for c := range a.ClassCycles {
		for i := range a.ClassCycles[c] {
			a.ClassCycles[c][i] = (a.ClassCycles[c][i] + b.ClassCycles[c][i]) / 2
		}
	}
	return a
}

// runASRBest implements the paper's ASR methodology (§5.1): six variants
// (adaptive plus five static probabilities), report the best-performing.
func runASRBest(w Workload, opt Options) Result {
	best := Result{}
	bestCPI := 0.0
	for i, mk := range []func(*sim.Chassis) sim.Design{
		func(ch *sim.Chassis) sim.Design { return design.NewASR(ch, 0, 0xA5A5) },
		func(ch *sim.Chassis) sim.Design { return design.NewASR(ch, 0.25, 0xA5A5) },
		func(ch *sim.Chassis) sim.Design { return design.NewASR(ch, 0.5, 0xA5A5) },
		func(ch *sim.Chassis) sim.Design { return design.NewASR(ch, 0.75, 0xA5A5) },
		func(ch *sim.Chassis) sim.Design { return design.NewASR(ch, 1, 0xA5A5) },
		func(ch *sim.Chassis) sim.Design { return design.NewAdaptiveASR(ch, 0xA5A5) },
	} {
		r := runBatches(w, opt, mk)
		if i == 0 || r.CPI() < bestCPI {
			best, bestCPI = r, r.CPI()
		}
	}
	best.Design = "A"
	return best
}

// Compare runs several designs on one workload with identical streams.
func Compare(w Workload, ids []DesignID, opt Options) map[DesignID]Result {
	out := make(map[DesignID]Result, len(ids))
	for _, id := range ids {
		out[id] = Run(w, id, opt)
	}
	return out
}

// SpeedupCI is a matched-pair speedup estimate: both designs run on
// identical per-batch reference streams (same seeds), so each batch
// yields one paired speedup observation; the mean and 95% CI are computed
// over those pairs. This mirrors how the paper's sampling methodology
// puts confidence intervals on the Figure 12 speedups rather than on raw
// CPIs.
type SpeedupCI struct {
	Mean float64
	CI95 float64
	N    int
}

// CompareCI measures the speedup of design a over design b on matched
// batches. Batches defaults to 5 when the option is unset or 1 (a single
// pair has no interval).
func CompareCI(w Workload, a, b DesignID, opt Options) SpeedupCI {
	opt = opt.withDefaults(w)
	if opt.Batches < 2 {
		opt.Batches = 5
	}
	var s stats.Summary
	for batch := 0; batch < opt.Batches; batch++ {
		ws := w
		ws.Seed = w.Seed + uint64(batch)*0x9E37
		single := opt
		single.Batches = 1
		ra := runBatches(ws, single, func(ch *sim.Chassis) sim.Design { return NewDesign(a, ch) })
		rb := runBatches(ws, single, func(ch *sim.Chassis) sim.Design { return NewDesign(b, ch) })
		s.Add(ra.Speedup(rb.Result))
	}
	return SpeedupCI{Mean: s.Mean(), CI95: s.CI95(), N: s.N()}
}
