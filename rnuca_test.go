package rnuca_test

import (
	"context"
	"testing"

	"rnuca"
	"rnuca/internal/sim"
)

var quick = rnuca.RunOptions{Warm: 20_000, Measure: 40_000}

// run executes one workload x design cell through the Job API.
func run(t *testing.T, w rnuca.Workload, id rnuca.DesignID, opt rnuca.RunOptions) rnuca.Result {
	t.Helper()
	job := rnuca.Job{Input: rnuca.FromWorkload(w), Designs: []rnuca.DesignID{id}, Options: opt}
	r, err := job.Run(context.Background())
	if err != nil {
		t.Fatalf("run %s under %s: %v", w.Name, id, err)
	}
	return r
}

// compare sweeps designs over one workload through the Job API.
func compare(t *testing.T, w rnuca.Workload, ids []rnuca.DesignID, opt rnuca.RunOptions) map[rnuca.DesignID]rnuca.Result {
	t.Helper()
	job := rnuca.Job{Input: rnuca.FromWorkload(w), Designs: ids, Options: opt}
	m, err := job.Compare(context.Background())
	if err != nil {
		t.Fatalf("compare %s: %v", w.Name, err)
	}
	return m
}

func TestRunProducesSaneResult(t *testing.T) {
	r := run(t, rnuca.OLTPDB2(), rnuca.DesignRNUCA, quick)
	if r.CPI() <= 1 {
		t.Fatalf("CPI %v must exceed the busy floor of 1", r.CPI())
	}
	if r.Refs != 40_000 {
		t.Fatalf("refs = %d", r.Refs)
	}
	if b := r.CPIStack[sim.BucketBusy]; b < 1-1e-9 || b > 1+1e-9 {
		t.Fatalf("busy CPI = %v, want 1 (IPC-1 core model)", b)
	}
	if r.OffChipMisses == 0 {
		t.Fatal("no off-chip misses on a 14MB-footprint workload")
	}
	if r.ClassifiedAccesses == 0 {
		t.Fatal("R-NUCA run must classify accesses")
	}
}

func TestRunDeterminism(t *testing.T) {
	a := run(t, rnuca.Apache(), rnuca.DesignShared, quick)
	b := run(t, rnuca.Apache(), rnuca.DesignShared, quick)
	if a.CPI() != b.CPI() || a.OffChipMisses != b.OffChipMisses {
		t.Fatalf("same run differed: %v vs %v", a.CPI(), b.CPI())
	}
}

func TestConfigFor(t *testing.T) {
	if cfg := rnuca.ConfigFor(rnuca.OLTPDB2()); cfg.Cores != 16 || cfg.L2SliceBytes != 1<<20 {
		t.Fatalf("16-core config wrong: %+v", cfg)
	}
	if cfg := rnuca.ConfigFor(rnuca.MIX()); cfg.Cores != 8 || cfg.L2SliceBytes != 3<<20 {
		t.Fatalf("8-core config wrong: %+v", cfg)
	}
	w := rnuca.OLTPDB2()
	w.Cores = 4
	if cfg := rnuca.ConfigFor(w); cfg.Cores != 4 || cfg.GridW*cfg.GridH != 4 {
		t.Fatalf("custom grid wrong: %+v", cfg)
	}
}

func TestCompareAndSpeedups(t *testing.T) {
	cmp := compare(t, rnuca.MIX(), []rnuca.DesignID{
		rnuca.DesignPrivate, rnuca.DesignShared, rnuca.DesignRNUCA,
	}, quick)
	p, s, r := cmp[rnuca.DesignPrivate], cmp[rnuca.DesignShared], cmp[rnuca.DesignRNUCA]
	// MIX is the canonical shared-averse workload: the private design must
	// beat the shared design, and R-NUCA must at least match private.
	if p.CPI() >= s.CPI() {
		t.Fatalf("MIX should be shared-averse: P=%v S=%v", p.CPI(), s.CPI())
	}
	if r.CPI() > p.CPI()*1.02 {
		t.Fatalf("R-NUCA should match the private design on MIX: R=%v P=%v", r.CPI(), p.CPI())
	}
	if sp := r.Speedup(s.Result); sp <= 0 {
		t.Fatalf("R-NUCA speedup over shared on MIX = %v, want > 0", sp)
	}
}

func TestPrivateAverseOrdering(t *testing.T) {
	// OLTP-DB2 is private-averse: shared beats private, and R-NUCA beats
	// both (the paper's headline result).
	cmp := compare(t, rnuca.OLTPDB2(), []rnuca.DesignID{
		rnuca.DesignPrivate, rnuca.DesignShared, rnuca.DesignRNUCA, rnuca.DesignIdeal,
	}, rnuca.RunOptions{Warm: 60_000, Measure: 120_000})
	p, s := cmp[rnuca.DesignPrivate], cmp[rnuca.DesignShared]
	r, i := cmp[rnuca.DesignRNUCA], cmp[rnuca.DesignIdeal]
	if s.CPI() >= p.CPI() {
		t.Fatalf("OLTP-DB2 should be private-averse: P=%v S=%v", p.CPI(), s.CPI())
	}
	if r.CPI() >= s.CPI() {
		t.Fatalf("R-NUCA should beat shared on OLTP: R=%v S=%v", r.CPI(), s.CPI())
	}
	if i.CPI() >= r.CPI() {
		t.Fatalf("ideal must lower-bound R-NUCA: I=%v R=%v", i.CPI(), r.CPI())
	}
}

func TestBatchesProduceCI(t *testing.T) {
	opt := quick
	opt.Batches = 3
	r := run(t, rnuca.Em3d(), rnuca.DesignShared, opt)
	if r.CPIMean <= 0 {
		t.Fatal("batched run missing mean")
	}
	// Independent seeds differ, so the CI is positive (and small).
	if r.CPICI <= 0 {
		t.Fatal("batched run missing confidence interval")
	}
	if r.CPICI > r.CPIMean*0.2 {
		t.Fatalf("CI suspiciously wide: %v of mean %v", r.CPICI, r.CPIMean)
	}
}

func TestClusterSizeOverride(t *testing.T) {
	r1 := run(t, rnuca.Apache(), rnuca.DesignRNUCA, rnuca.RunOptions{Warm: 20_000, Measure: 40_000, InstrClusterSize: 1})
	r16 := run(t, rnuca.Apache(), rnuca.DesignRNUCA, rnuca.RunOptions{Warm: 20_000, Measure: 40_000, InstrClusterSize: 16})
	if r1.CPI() == r16.CPI() {
		t.Fatal("cluster size override had no effect")
	}
}

func TestMisclassificationBound(t *testing.T) {
	// §5.2: page-granularity classification misclassifies less than 0.75%
	// of L2 accesses.
	for _, w := range []rnuca.Workload{rnuca.OLTPDB2(), rnuca.Apache(), rnuca.DSSQry6()} {
		r := run(t, w, rnuca.DesignRNUCA, rnuca.RunOptions{Warm: 60_000, Measure: 120_000})
		frac := float64(r.MisclassifiedAccesses) / float64(r.ClassifiedAccesses)
		if frac >= 0.0075 {
			t.Errorf("%s: misclassification %.3f%% >= 0.75%%", w.Name, 100*frac)
		}
	}
}

func TestNewDesignUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown design must panic")
		}
	}()
	rnuca.NewDesign("X", sim.NewChassis(sim.Config16()))
}

func TestCompareCIMatchedPairs(t *testing.T) {
	ci := rnuca.CompareCI(rnuca.MIX(), rnuca.DesignRNUCA, rnuca.DesignShared,
		rnuca.RunOptions{Warm: 20_000, Measure: 40_000, Batches: 3})
	if ci.N != 3 {
		t.Fatalf("pairs = %d", ci.N)
	}
	// R over S on MIX is solidly positive and the CI is tight because the
	// pairs share streams.
	if ci.Mean <= 0 {
		t.Fatalf("R-over-S speedup on MIX = %v", ci.Mean)
	}
	if ci.CI95 >= ci.Mean {
		t.Fatalf("matched-pair CI %v should be well below the mean %v", ci.CI95, ci.Mean)
	}
}

func TestASRBestOfSix(t *testing.T) {
	r := run(t, rnuca.Em3d(), rnuca.DesignASR, rnuca.RunOptions{Warm: 10_000, Measure: 20_000})
	if r.Design != "A" {
		t.Fatalf("ASR best-of-six should report as A, got %q", r.Design)
	}
	if r.CPI() <= 1 {
		t.Fatalf("ASR CPI %v", r.CPI())
	}
}
