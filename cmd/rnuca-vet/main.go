// Command rnuca-vet runs the repo's static analyzer suite (package
// rnuca/internal/analysis) over the given package patterns and reports
// every finding. Exit status 1 means findings; 2 means the analysis
// itself failed. It must run from inside the module (the loader
// resolves the module's own import paths through the go command):
//
//	go run ./cmd/rnuca-vet ./...
//	go run ./cmd/rnuca-vet -json ./... | jq '.[].code'
//
// See internal/analysis/doc.go for the diagnostic codes and the
// //rnuca: annotation vocabulary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rnuca/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (file/line/col/code/analyzer/message)")
	list := flag.Bool("codes", false, "list every diagnostic code the suite can emit and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rnuca-vet [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range analysis.AllCodes() {
			fmt.Println(c)
		}
		return
	}

	pkgs, err := analysis.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rnuca-vet:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rnuca-vet:", err)
		os.Exit(2)
	}

	if *jsonOut {
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "rnuca-vet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
