// Command rnuca-vet runs the repo's static analyzer suite (package
// rnuca/internal/analysis) over the given package patterns and reports
// every finding. Exit status 1 means findings; 2 means the analysis
// itself failed. It must run from inside the module (the loader
// resolves the module's own import paths through the go command):
//
//	go run ./cmd/rnuca-vet ./...
//	go run ./cmd/rnuca-vet -json ./... | jq '.[].code'
//	go run ./cmd/rnuca-vet -jobs 4 -sarif ./... > vet.sarif
//	go run ./cmd/rnuca-vet -baseline vet-baseline.json ./...
//
// -jobs N fans the type-check out over N workers (N<=1 is the shared-
// cache sequential loader). -baseline admits the findings recorded in
// a baseline file and fails only on new ones; -write-baseline
// snapshots the current findings into one. -update regenerates the
// api-frozen.txt snapshots of packages that carry them, for deliberate
// API changes.
//
// See internal/analysis/doc.go for the diagnostic codes and the
// //rnuca: annotation vocabulary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rnuca/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (file/line/col/code/analyzer/message)")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log for code-scanning upload")
	list := flag.Bool("codes", false, "list every diagnostic code the suite can emit and exit")
	jobs := flag.Int("jobs", 1, "type-check packages over this many parallel workers")
	baselinePath := flag.String("baseline", "", "admit the findings in this baseline file; fail only on new ones")
	writeBaseline := flag.String("write-baseline", "", "snapshot current findings into this baseline file and exit 0")
	update := flag.Bool("update", false, "regenerate api-frozen.txt snapshots instead of reporting apifreeze findings")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: rnuca-vet [-json|-sarif] [-jobs n] [-baseline file] [-write-baseline file] [-update] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range analysis.AllCodes() {
			fmt.Println(c)
		}
		return
	}

	analysis.UpdateAPISnapshots = *update

	pkgs, err := analysis.LoadParallel(*jobs, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rnuca-vet:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rnuca-vet:", err)
		os.Exit(2)
	}
	relativize(diags)

	if *writeBaseline != "" {
		if err := analysis.WriteBaseline(*writeBaseline, diags); err != nil {
			fmt.Fprintln(os.Stderr, "rnuca-vet:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "rnuca-vet: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return
	}
	if *baselinePath != "" {
		entries, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rnuca-vet:", err)
			os.Exit(2)
		}
		admitted, fresh := analysis.ApplyBaseline(diags, entries)
		if len(admitted) > 0 {
			fmt.Fprintf(os.Stderr, "rnuca-vet: %d baselined finding(s) admitted\n", len(admitted))
		}
		diags = fresh
	}

	switch {
	case *sarifOut:
		root, _ := os.Getwd()
		out, err := analysis.MarshalSARIF(diags, root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rnuca-vet:", err)
			os.Exit(2)
		}
		os.Stdout.Write(append(out, '\n'))
	case *jsonOut:
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "rnuca-vet:", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// relativize rewrites diagnostic paths relative to the working
// directory (the module root, per the run-from-module contract), so
// findings, baselines, and SARIF artifacts are machine-portable.
func relativize(diags []analysis.Diagnostic) {
	cwd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
}
