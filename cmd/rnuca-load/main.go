// Command rnuca-load drives an rnuca-serve instance with an open-loop
// synthetic job stream and reports the latency the client felt next
// to what the server measured.
//
// Usage:
//
//	rnuca-load [-url http://localhost:8091] [-rate 50] [-concurrency 64]
//	           [-total N | -duration 30s] [-mix cached=8,cold=1,compare=1]
//	           [-workload OLTP-DB2] [-corpus REF] [-warm N] [-measure N]
//	           [-seed 1] [-poll 10ms] [-csv]
//
// Arrivals fire on a fixed clock (-rate per second) regardless of how
// fast the server answers — the open-loop model that exposes queueing
// collapse. -concurrency caps in-flight jobs; arrivals beyond the cap
// are shed and counted, never queued client-side.
//
// -mix weights the job families: cached repeats one canonical job
// (result-cache hits after the first), cold gives every job a fresh
// workload seed (guaranteed misses), compare submits two-design
// comparisons, replay targets -corpus. Weights are comma-separated
// kind=N pairs.
//
// Each job's submit→terminal latency is recorded client-side with the
// same streaming quantile estimators the server uses, so the final
// comparison table — client vs the server's /v1/stats — is estimator
// against estimator: the delta is network, polling granularity, and
// scheduling, the part of latency a server-side view never sees.
//
// The exit status is 0 only when every scheduled job was accepted and
// finished done: sheds, throttles, failures, or transport errors exit 1
// (the CI smoke gate).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rnuca/internal/loadgen"
)

func main() {
	url := flag.String("url", "http://localhost:8091", "rnuca-serve base URL")
	rate := flag.Float64("rate", 50, "open-loop arrival rate, jobs/sec")
	concurrency := flag.Int("concurrency", 64, "in-flight job cap (arrivals beyond it are shed)")
	total := flag.Int("total", 0, "total arrivals to schedule (0 = duration-bounded)")
	duration := flag.Duration("duration", 0, "run length (0 = total-bounded)")
	mix := flag.String("mix", "cached=1", "job mix weights, e.g. cached=8,cold=1,compare=1,replay=2")
	workloadName := flag.String("workload", "OLTP-DB2", "catalog workload for cached/cold/compare jobs")
	corpusRef := flag.String("corpus", "", "corpus ref for replay jobs (empty: replay weight runs cached)")
	warm := flag.Int("warm", 0, "per-job warmup refs (0 = 2000)")
	measure := flag.Int("measure", 0, "per-job measured refs (0 = 4000)")
	seed := flag.Int64("seed", 1, "mix-sequence and cold-job seed")
	poll := flag.Duration("poll", 0, "job status poll interval (0 = 10ms)")
	csv := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	flag.Parse()

	weights, err := parseMix(*mix)
	if err != nil {
		fatalf("%v", err)
	}
	if *total <= 0 && *duration <= 0 {
		fatalf("need -total or -duration")
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer cancel()

	res, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:     *url,
		Rate:        *rate,
		Concurrency: *concurrency,
		Total:       *total,
		Duration:    *duration,
		Mix:         weights,
		Workload:    *workloadName,
		Corpus:      *corpusRef,
		Warm:        *warm,
		Measure:     *measure,
		Seed:        *seed,
		Poll:        *poll,
	})
	if err != nil && res == nil {
		fatalf("%v", err)
	}

	fmt.Printf("scheduled %d  submitted %d  done %d  failed %d  canceled %d\n",
		res.Scheduled, res.Submitted, res.Done, res.Failed, res.Canceled)
	fmt.Printf("shed %d  throttled(429) %d  unavailable(503) %d  errors %d  elapsed %s\n",
		res.Shed, res.Throttled, res.Unavailable, res.Errors,
		res.Elapsed.Round(time.Millisecond))
	if res.Elapsed > 0 && res.Done > 0 {
		fmt.Printf("throughput %.1f jobs/sec\n", float64(res.Done)/res.Elapsed.Seconds())
	}
	fmt.Println()

	mt := loadgen.MixTable(res.Latency)
	if *csv {
		mt.CSV(os.Stdout)
	} else {
		mt.Render(os.Stdout)
	}
	fmt.Println()

	// Pull the server's view and render the comparison: the client's
	// aggregate against the server's "sim" kind (every mix family
	// submits simulation jobs).
	if stats, serr := loadgen.FetchServerStats(ctx, nil, *url); serr != nil {
		fmt.Fprintf(os.Stderr, "rnuca-load: fetching /v1/stats: %v\n", serr)
	} else {
		if server, ok := stats.Kind("sim"); ok {
			ct := loadgen.CompareTable(res.Latency["all"], server)
			if *csv {
				ct.CSV(os.Stdout)
			} else {
				ct.Render(os.Stdout)
			}
		}
		fmt.Printf("\nserver: queue_depth %d  inflight %d  throttled %d  window %gs\n",
			stats.QueueDepth, stats.Inflight, stats.Ledger.Throttled, stats.WindowSeconds)
	}

	if err != nil {
		fatalf("%v", err)
	}
	if res.Shed > 0 || res.Throttled > 0 || res.Unavailable > 0 || res.Errors > 0 ||
		res.Failed > 0 || res.Canceled > 0 || res.Done != res.Scheduled {
		os.Exit(1)
	}
}

// parseMix decodes comma-separated kind=N weight pairs.
func parseMix(s string) (map[string]int, error) {
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not kind=N", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("mix weight %q is not a non-negative integer", part)
		}
		out[strings.TrimSpace(kind)] = n
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix %q", s)
	}
	// Deterministic validation order for error messages.
	kinds := make([]string, 0, len(out))
	for k := range out {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		switch k {
		case loadgen.MixCached, loadgen.MixCold, loadgen.MixCompare, loadgen.MixReplay:
		default:
			return nil, fmt.Errorf("unknown mix kind %q (cached, cold, compare, replay)", k)
		}
	}
	return out, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "rnuca-load: "+format+"\n", args...)
	os.Exit(1)
}
