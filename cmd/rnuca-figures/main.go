// Command rnuca-figures regenerates every table and figure of the paper's
// evaluation. By default it prints all of them at quick scale; select a
// single experiment with -exp and the publication scale with -scale full.
//
// Usage:
//
//	rnuca-figures [-exp all|table1|fig2|fig3|fig4|fig5|fig7|fig8|fig9|fig10|fig11|fig12|classacc]
//	              [-scale quick|full] [-csv] [-trace-out spans.json]
//	              [-timeline FILE] [-epoch N]
//
// -trace-out collects the campaign's per-stage span trace
// (internal/obs) over every selected experiment and writes it as JSON.
// -timeline attaches the flight recorder to every simulation cell the
// campaign runs and writes every recorded timeline (per-core CPI
// sparklines, bank-pressure heatmap, classification churn, hottest
// links) to FILE as text, one section per workload/design cell, in
// deterministic key order; "-" writes to stdout. -epoch sets the
// epoch length in measured refs (default 64Ki). Recording never
// changes the tables.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"rnuca"
	"rnuca/internal/experiments"
	"rnuca/internal/obs"
	"rnuca/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, fig2..fig12, classacc, privclust, scaling, meshtorus, migration, memlat, traffic, nocmodel)")
	scale := flag.String("scale", "quick", "quick (seconds) or full (minutes, CI batches, best-of-six ASR)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	traceOut := flag.String("trace-out", "", "write the campaign's per-stage span trace as JSON to this path")
	timelineOut := flag.String("timeline", "", "record flight timelines for every cell and write them here (text; - for stdout)")
	epoch := flag.Int("epoch", 0, "flight-recorder epoch length in measured refs (0 = default 64Ki)")
	flag.Parse()

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.Quick()
	case "full":
		s = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	c := experiments.NewCampaign(s)
	var spans *obs.Trace
	if *traceOut != "" {
		spans = obs.NewTrace(0)
		c.SetContext(obs.ContextWithTrace(context.Background(), spans))
	}
	if *timelineOut != "" {
		c.SetTimeline(&rnuca.TimelineConfig{Every: *epoch})
	}

	runners := map[string]func() []*report.Table{
		"table1":    experiments.Table1,
		"fig2":      c.Fig2,
		"fig3":      func() []*report.Table { return []*report.Table{c.Fig3()} },
		"fig4":      func() []*report.Table { return []*report.Table{c.Fig4()} },
		"fig5":      func() []*report.Table { return []*report.Table{c.Fig5()} },
		"fig7":      func() []*report.Table { return []*report.Table{c.Fig7()} },
		"fig8":      func() []*report.Table { return []*report.Table{c.Fig8()} },
		"fig9":      func() []*report.Table { return []*report.Table{c.Fig9()} },
		"fig10":     func() []*report.Table { return []*report.Table{c.Fig10()} },
		"fig11":     func() []*report.Table { return []*report.Table{c.Fig11()} },
		"fig12":     func() []*report.Table { return []*report.Table{c.Fig12()} },
		"classacc":  func() []*report.Table { return []*report.Table{c.ClassificationAccuracy()} },
		"privclust": func() []*report.Table { return []*report.Table{c.PrivateClusterAblation()} },
		"scaling":   func() []*report.Table { return []*report.Table{c.TechnologyScaling()} },
		"meshtorus": func() []*report.Table { return []*report.Table{c.MeshVsTorus()} },
		"migration": func() []*report.Table { return []*report.Table{c.MigrationStress()} },
		"memlat":    func() []*report.Table { return []*report.Table{c.MemLatencySweep()} },
		"traffic":   func() []*report.Table { return []*report.Table{c.TrafficComparison()} },
		"nocmodel":  func() []*report.Table { return []*report.Table{c.ContentionModelAblation()} },
	}
	order := []string{"table1", "fig2", "fig3", "fig4", "fig5", "classacc",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"privclust", "scaling", "meshtorus", "migration", "memlat", "traffic", "nocmodel"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, e := range strings.Split(*exp, ",") {
			if _, ok := runners[e]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (choose from %s)\n", e, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		for _, t := range runners[e]() {
			if *csv {
				t.CSV(os.Stdout)
			} else {
				t.Render(os.Stdout)
			}
			fmt.Println()
		}
	}
	if spans != nil {
		if err := obs.WriteTraceFile(*traceOut, spans); err != nil {
			fmt.Fprintf(os.Stderr, "rnuca-figures: %v\n", err)
			os.Exit(1)
		}
	}
	if *timelineOut != "" {
		if err := writeCampaignTimelines(*timelineOut, c.Timelines()); err != nil {
			fmt.Fprintf(os.Stderr, "rnuca-figures: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeCampaignTimelines renders every recorded cell timeline, one
// section per "workload/design" key in sorted order.
func writeCampaignTimelines(path string, tls map[string]*rnuca.Timeline) error {
	keys := make([]string, 0, len(tls))
	for k := range tls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf strings.Builder
	for i, k := range keys {
		if i > 0 {
			fmt.Fprintln(&buf)
		}
		report.RenderTimeline(&buf, k, tls[k])
	}
	if len(keys) == 0 {
		fmt.Fprintln(&buf, "timeline: no epochs recorded")
	}
	if path == "-" {
		_, err := os.Stdout.WriteString(buf.String())
		return err
	}
	return os.WriteFile(path, []byte(buf.String()), 0o644)
}
