// Command rnuca-classify runs the §3 trace characterization for one
// workload: the Figure 2 sharer clustering, the Figure 3 class breakdown,
// the Figure 4 working-set quantiles, and the Figure 5 reuse histograms.
//
// Usage:
//
//	rnuca-classify -workload Apache [-refs 500000]
package main

import (
	"flag"
	"fmt"
	"os"

	"rnuca/internal/cache"
	"rnuca/internal/report"
	"rnuca/internal/trace"
	"rnuca/internal/workload"
)

func main() {
	wl := flag.String("workload", "OLTP-DB2", "workload name")
	refs := flag.Int("refs", 400000, "references to analyze")
	flag.Parse()

	w, ok := workload.ByName(*wl)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}
	an := trace.NewAnalyzer(w.Cores)
	streams := workload.Streams(w)
	for i := 0; i < *refs; i++ {
		an.Observe(streams[i%len(streams)].Next())
	}

	fmt.Printf("%s: %d references, %d distinct blocks\n\n", w.Name, an.Total(), an.Blocks())

	cl := report.NewTable("Reference clustering (Figure 2)", "Sharers", "Kind", "%RW blocks", "%accesses", "Blocks")
	for _, b := range an.ReferenceClustering() {
		if b.AccessShare < 0.001 {
			continue
		}
		kind := "data"
		if b.Instruction {
			kind = "instr"
		} else if b.Private {
			kind = "data-priv"
		}
		cl.AddRow(fmt.Sprint(b.Sharers), kind,
			fmt.Sprintf("%.1f%%", 100*b.RWFraction),
			fmt.Sprintf("%.1f%%", 100*b.AccessShare), fmt.Sprint(b.Blocks))
	}
	cl.Render(os.Stdout)
	fmt.Println()

	bd := an.ReferenceBreakdown()
	br := report.NewTable("Class breakdown (Figure 3)", "Instructions", "Private", "Shared-RW", "Shared-RO")
	br.AddRow(
		fmt.Sprintf("%.1f%%", 100*bd.Instructions),
		fmt.Sprintf("%.1f%%", 100*bd.DataPrivate),
		fmt.Sprintf("%.1f%%", 100*bd.DataSharedRW),
		fmt.Sprintf("%.1f%%", 100*bd.DataSharedRO))
	br.Render(os.Stdout)
	fmt.Println()

	ws := report.NewTable("Working sets (Figure 4)", "Class", "50%", "90%")
	for _, class := range []cache.Class{cache.ClassPrivate, cache.ClassInstruction, cache.ClassShared} {
		cdf := an.WorkingSetCDF(class)
		if cdf.Samples() == 0 {
			continue
		}
		ws.AddRow(class.String(),
			fmt.Sprintf("%.0fKB", cdf.Quantile(0.5)),
			fmt.Sprintf("%.0fKB", cdf.Quantile(0.9)))
	}
	ws.Render(os.Stdout)
	fmt.Println()

	labels := trace.RunBucketLabels()
	re := report.NewTable("Reuse (Figure 5)", "Kind", labels[0], labels[1], labels[2], labels[3], labels[4])
	ih := an.ReuseHistogram(true)
	sh := an.ReuseHistogram(false)
	row := func(kind string, h [5]float64) {
		re.AddRow(kind,
			fmt.Sprintf("%.1f%%", 100*h[0]), fmt.Sprintf("%.1f%%", 100*h[1]),
			fmt.Sprintf("%.1f%%", 100*h[2]), fmt.Sprintf("%.1f%%", 100*h[3]),
			fmt.Sprintf("%.1f%%", 100*h[4]))
	}
	row("instructions", ih)
	row("shared data", sh)
	re.Render(os.Stdout)
}
