// Command rnuca-trace captures, converts, inspects, indexes, and
// replays L2 reference traces in the tracefile format (see
// internal/tracefile and internal/ingest).
//
// Usage:
//
//	rnuca-trace record -workload OLTP-DB2 [-design R] [-warm N]
//	            [-measure N] [-seed S] -o trace.rnt
//	rnuca-trace record -all [-set primary|extended] [-seeds N]
//	            [-jobs J] [-design R] [-warm N] [-measure N] -dir DIR
//	rnuca-trace convert [-format din|champsim|csv] [-cores N]
//	            [-interleave files|stride|keep] [-stride N]
//	            [-classify stream|twopass|off] [-max-pages N]
//	            [-page-bytes N] [-busy N] [-mlp F] [-workload NAME]
//	            -o trace.rnt INPUT...
//	rnuca-trace info trace.rnt
//	rnuca-trace index [-upgrade OUT] [-stats] trace.rnt
//	rnuca-trace replay [-design R | -design P,A,S,R,I | -design all]
//	            [-warm N] [-measure N] [-batches B] [-shards N]
//	            [-window START:N] [-timeline FILE] [-epoch N] trace.rnt
//	rnuca-trace corpus add|ls|verify|rm|gc -dir STORE ...
//
// record runs a workload through a design once and tees the consumed
// reference stream to disk; with -all it fans every catalog workload x
// seed across -jobs parallel workers into -dir. convert ingests foreign
// address traces (Dinero din, ChampSim-style text, generic CSV; gzip
// transparently inflated) into an indexed v2 corpus, interleaving
// single-threaded inputs onto cores and inferring page-grain classes
// (see internal/ingest). info prints the header and a scan summary.
// index prints the v2 chunk index (with -stats, per-chunk compressed
// sizes and a lastAddr drift summary; with -upgrade, rewrites any
// readable trace as an indexed v2 file). replay re-runs any of the five
// designs over the saved trace, in parallel across designs and batches,
// skipping generation cost; a same-design replay reproduces the
// recording run's numbers exactly. On indexed traces, -shards fans
// chunk decoding across workers without changing results, and -window
// replays only the records [START, START+N). corpus manages a
// content-addressed corpus store (internal/corpus) — the store
// rnuca-serve answers jobs from: add validates and stores traces by
// SHA-256 digest, ls lists manifests, verify re-checks content and
// chunk structure, rm drops names, gc collects unreferenced objects.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"rnuca"
	"rnuca/internal/ingest"
	"rnuca/internal/obs"
	"rnuca/internal/report"
	"rnuca/internal/tracefile"
	"rnuca/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "convert":
		convert(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "index":
		index(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "corpus":
		corpusCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rnuca-trace record -workload NAME [-design R] [-warm N] [-measure N] [-seed S] -o FILE
  rnuca-trace record -all [-set primary|extended] [-seeds N] [-jobs J] [-design R] [-warm N] [-measure N] -dir DIR
  rnuca-trace convert [-format NAME] [-cores N] [-interleave files|stride|keep] [-stride N]
              [-classify stream|twopass|off] [-max-pages N] [-page-bytes N] [-busy N] [-mlp F]
              [-workload NAME] -o FILE INPUT...
  rnuca-trace info FILE
  rnuca-trace index [-upgrade OUT] [-stats] FILE
  rnuca-trace replay [-design IDS|all] [-warm N] [-measure N] [-batches B] [-shards N] [-window START:N] [-timeline FILE] [-epoch N] FILE
  rnuca-trace corpus add -dir STORE [-name NAME] FILE...
  rnuca-trace corpus ls -dir STORE
  rnuca-trace corpus verify -dir STORE [REF...]
  rnuca-trace corpus rm -dir STORE NAME...
  rnuca-trace corpus gc -dir STORE [-n]`)
	os.Exit(2)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func parseDesign(s string) rnuca.DesignID {
	id := rnuca.DesignID(strings.ToUpper(s))
	for _, d := range rnuca.AllDesigns() {
		if id == d {
			return id
		}
	}
	fatalf("unknown design %q (P, A, S, R, I)", s)
	panic("unreachable")
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wl := fs.String("workload", "OLTP-DB2", "workload name (see rnuca-sim -list)")
	ds := fs.String("design", "R", "design the recording run uses: P, A, S, R or I")
	warm := fs.Int("warm", 0, "warmup references (0 = default)")
	measure := fs.Int("measure", 0, "measured references (0 = default)")
	seed := fs.Uint64("seed", 0, "workload seed override (0 = workload default)")
	out := fs.String("o", "", "output trace path (required unless -all)")
	all := fs.Bool("all", false, "record every catalog workload x seed instead of one")
	set := fs.String("set", "primary", "catalog set for -all: primary or extended (primary + extras)")
	seeds := fs.Int("seeds", 1, "seed variants per workload for -all")
	jobs := fs.Int("jobs", 0, "parallel recording jobs for -all (0 = one per CPU)")
	dir := fs.String("dir", "", "output directory for -all (required with -all)")
	fs.Parse(args)
	id := parseDesign(*ds)
	opt := rnuca.RunOptions{Warm: *warm, Measure: *measure}
	if *all {
		recordAll(id, opt, *set, *seeds, *jobs, *dir)
		return
	}
	if *out == "" {
		fatalf("record: -o is required")
	}
	w, ok := workload.ByName(*wl)
	if !ok {
		fatalf("unknown workload %q", *wl)
	}
	if *seed != 0 {
		w.Seed = *seed
	}

	res, err := recordOne(w, id, opt, *out)
	if err != nil {
		fatalf("record: %v", err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fatalf("record: %v", err)
	}
	f, err := tracefile.Open(*out)
	if err != nil {
		fatalf("record: %v", err)
	}
	total := f.Header().Refs
	f.Close()
	fmt.Printf("recorded %s under %s: %d measured refs, CPI %.4f\n", w.Name, id, res.Refs, res.CPI())
	fmt.Printf("  %s: %d refs, %d bytes (%.2f bytes/ref)\n",
		*out, total, st.Size(), float64(st.Size())/float64(total))
}

// recordOne runs one recording job for a workload under a design.
func recordOne(w workload.Spec, id rnuca.DesignID, opt rnuca.RunOptions, out string) (rnuca.Result, error) {
	job := rnuca.Job{
		Input:   rnuca.FromWorkload(w),
		Designs: []rnuca.DesignID{id},
		Options: opt,
	}
	return job.Record(context.Background(), out)
}

// recordAll fans every catalog workload x seed across parallel workers,
// one trace file per (workload, seed) under dir. Seed variants follow
// the library's batch convention (base + k*0x9E37), so trace k of a
// workload matches batch k of a generator run.
func recordAll(id rnuca.DesignID, opt rnuca.RunOptions, set string, seeds, jobs int, dir string) {
	if dir == "" {
		fatalf("record -all: -dir is required")
	}
	if seeds < 1 {
		fatalf("record -all: -seeds %d", seeds)
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	var specs []workload.Spec
	switch set {
	case "primary":
		specs = workload.Primary()
	case "extended":
		specs = append(workload.Primary(), workload.Extended()...)
	default:
		fatalf("record -all: unknown set %q (primary, extended)", set)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatalf("record -all: %v", err)
	}

	type job struct {
		spec workload.Spec
		k    int
		path string
	}
	var queue []job
	for _, w := range specs {
		for k := 0; k < seeds; k++ {
			ws := w
			ws.Seed = w.Seed + uint64(k)*0x9E37
			queue = append(queue, job{
				spec: ws, k: k,
				path: filepath.Join(dir, fmt.Sprintf("%s-s%d.rnt", ws.Name, k)),
			})
		}
	}

	var (
		mu     sync.Mutex
		failed int
		next   int
		wg     sync.WaitGroup
	)
	fmt.Printf("recording %d traces (%d workloads x %d seeds) under design %s with %d jobs\n",
		len(queue), len(specs), seeds, id, jobs)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(queue) {
					mu.Unlock()
					return
				}
				j := queue[next]
				next++
				mu.Unlock()
				res, err := recordOne(j.spec, id, opt, j.path)
				mu.Lock()
				if err != nil {
					failed++
					fmt.Fprintf(os.Stderr, "  FAIL %s seed %d: %v\n", j.spec.Name, j.k, err)
				} else {
					var size int64
					if st, serr := os.Stat(j.path); serr == nil {
						size = st.Size()
					}
					fmt.Printf("  %-16s seed %d -> %s (%d refs, %d bytes, CPI %.4f)\n",
						j.spec.Name, j.k, j.path, res.Refs, size, res.CPI())
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if failed > 0 {
		fatalf("record -all: %d of %d recordings failed", failed, len(queue))
	}
}

// convert ingests foreign address traces into an indexed v2 corpus.
func convert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	format := fs.String("format", "", "input format for every input (default: detect per input from the extension)")
	cores := fs.Int("cores", 0, "converted core count (default: input count for files mode, 16 for stride, scanned from input core ids for keep)")
	inter := fs.String("interleave", "files", "core mapping: files (one input per core), stride (slice one stream), keep (trust input core fields)")
	stride := fs.Int("stride", ingest.DefaultStride, "refs per core run in stride mode")
	classify := fs.String("classify", "stream", "class inference: stream (online, one pass), twopass (settled classes, two passes), off")
	maxPages := fs.Int("max-pages", 0, "bound the classifier's page table to N pages (0 = unbounded)")
	pageBytes := fs.Int("page-bytes", ingest.DefaultPageBytes, "classifier page size in bytes (power of two)")
	busy := fs.Int("busy", ingest.DefaultBusy, "busy cycles charged per reference")
	mlp := fs.Float64("mlp", ingest.DefaultMLP, "off-chip memory-level parallelism recorded in the header")
	name := fs.String("workload", "", "corpus workload name (default: first input's base name)")
	out := fs.String("o", "", "output trace path (required)")
	fs.Parse(args)
	if *out == "" {
		fatalf("convert: -o is required")
	}
	if fs.NArg() == 0 {
		fatalf("convert: no inputs (formats: %s)", formatList())
	}
	im, err := ingest.ParseInterleaveMode(*inter)
	if err != nil {
		fatalf("convert: %v", err)
	}
	cm, err := ingest.ParseClassifyMode(*classify)
	if err != nil {
		fatalf("convert: %v", err)
	}

	sum, err := ingest.Convert(fs.Args(), *out, ingest.Options{
		Format:     *format,
		Cores:      *cores,
		Interleave: im,
		Stride:     *stride,
		Classify:   cm,
		MaxPages:   *maxPages,
		PageBytes:  *pageBytes,
		Busy:       *busy,
		OffChipMLP: *mlp,
		Workload:   *name,
	})
	if err != nil {
		fatalf("convert: %v", err)
	}
	auto := ""
	if sum.AutoCores {
		auto = ", auto-sized"
	}
	fmt.Printf("converted %d input(s) -> %s (%s, %d cores%s)\n", len(sum.Inputs), sum.Out, sum.Workload, sum.Cores, auto)
	for _, in := range sum.Inputs {
		fmt.Printf("  %-24s %-10s %d refs\n", in.Path, in.Format, in.Refs)
	}
	total := sum.Refs
	fmt.Printf("  refs         %d in %d chunks, %d bytes (%.2f bytes/ref)\n",
		total, sum.Chunks, sum.Bytes, float64(sum.Bytes)/float64(total))
	fmt.Printf("  kinds        ifetch %s, load %s, store %s\n",
		pct(sum.Kinds[0], total), pct(sum.Kinds[1], total), pct(sum.Kinds[2], total))
	if cm != ingest.ClassifyOff {
		fmt.Printf("  classes      instr %s, private %s, shared %s\n",
			pct(sum.Classes[1], total), pct(sum.Classes[2], total), pct(sum.Classes[3], total))
		cs := sum.Classify
		fmt.Printf("  classifier   %d pages (%d evicted), %d first touches, %d->shared, %d migrations\n",
			cs.Pages, cs.Evictions, cs.FirstTouches, cs.PrivateToShared+cs.InstrToShared, cs.Migrations)
	}
}

func formatList() string {
	var names []string
	for _, f := range ingest.Formats() {
		names = append(names, f.Name)
	}
	return strings.Join(names, ", ")
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	f, err := tracefile.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	hdr := f.Header()
	fmt.Printf("%s: tracefile v%d\n", path, f.Version())
	fmt.Printf("  workload     %s (%d cores, seed %d)\n", hdr.Workload, hdr.Cores, hdr.Seed)
	fmt.Printf("  recorded by  design %s, warm %d + measure %d, off-chip MLP %.2f\n",
		orNone(hdr.Design), hdr.Warm, hdr.Measure, hdr.OffChipMLP)
	if hdr.Refs > 0 {
		fmt.Printf("  declared     %d refs\n", hdr.Refs)
	} else {
		fmt.Printf("  declared     streaming (no ref count)\n")
	}

	var kinds [3]uint64
	var classes [4]uint64
	perCore := map[int]uint64{}
	pages := map[uint64]struct{}{}
	var total uint64
	for {
		r, ok := f.Next()
		if !ok {
			break
		}
		total++
		kinds[r.Kind]++
		classes[r.Class]++
		perCore[r.Core]++
		pages[r.Addr>>13] = struct{}{}
	}
	if err := f.Err(); err != nil {
		fatalf("scan after %d refs: %v", total, err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("  scanned      %d refs, %d distinct 8KB pages, %.2f bytes/ref\n",
		total, len(pages), float64(st.Size())/float64(total))
	fmt.Printf("  kinds        ifetch %s, load %s, store %s\n",
		pct(kinds[0], total), pct(kinds[1], total), pct(kinds[2], total))
	fmt.Printf("  classes      instr %s, private %s, shared %s\n",
		pct(classes[1], total), pct(classes[2], total), pct(classes[3], total))
	cores := make([]int, 0, len(perCore))
	for c := range perCore {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	fmt.Printf("  per-core     ")
	for i, c := range cores {
		if i > 0 {
			fmt.Printf(" ")
		}
		fmt.Printf("%d:%d", c, perCore[c])
	}
	fmt.Println()
}

// index prints a v2 trace's chunk index, or rewrites a trace (any
// readable version) as an indexed v2 file with -upgrade. With -stats it
// adds per-chunk compressed sizes and a lastAddr drift summary, the
// corpus-hygiene view: wildly uneven chunk sizes or runaway address
// drift flag a trace that was converted or recorded wrong.
func index(args []string) {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	upgrade := fs.String("upgrade", "", "rewrite FILE as an indexed v2 trace at this path")
	stats := fs.Bool("stats", false, "print per-chunk compressed sizes and a lastAddr drift summary")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	if *upgrade != "" {
		upgradeTrace(path, *upgrade)
		return
	}

	x, err := tracefile.OpenIndexed(path)
	if errors.Is(err, tracefile.ErrNoIndex) {
		fatalf("%s has no chunk index; rewrite it with\n  rnuca-trace index -upgrade NEW.rnt %s", path, path)
	}
	if err != nil {
		fatalf("%v", err)
	}
	defer x.Close()
	hdr := x.Header()
	fmt.Printf("%s: %d records in %d chunks (%s, %d cores)\n",
		path, x.Refs(), x.Chunks(), hdr.Workload, hdr.Cores)
	if *stats {
		fmt.Printf("  %-6s %-12s %-12s %-10s %-10s %s\n",
			"chunk", "offset", "first-rec", "records", "comp-bytes", "bytes/ref")
	} else {
		fmt.Printf("  %-6s %-12s %-12s %s\n", "chunk", "offset", "first-rec", "records")
	}
	const maxRows = 48
	for i := 0; i < x.Chunks(); i++ {
		if x.Chunks() > maxRows && i == maxRows-8 {
			fmt.Printf("  ... %d chunks elided ...\n", x.Chunks()-maxRows)
			i = x.Chunks() - 8
		}
		e := x.Entry(i)
		if *stats {
			size := x.ChunkCompressedBytes(i)
			fmt.Printf("  %-6d %-12d %-12d %-10d %-10d %.2f\n",
				i, e.Offset, e.FirstRecord, e.Count, size, float64(size)/float64(e.Count))
		} else {
			fmt.Printf("  %-6d %-12d %-12d %d\n", i, e.Offset, e.FirstRecord, e.Count)
		}
	}
	if *stats {
		printIndexStats(x)
	}
}

// printIndexStats summarizes chunk sizes and per-core lastAddr drift
// between consecutive chunk snapshots.
func printIndexStats(x *tracefile.IndexedReader) {
	var minSize, maxSize, sumSize uint64
	for i := 0; i < x.Chunks(); i++ {
		s := x.ChunkCompressedBytes(i)
		if i == 0 || s < minSize {
			minSize = s
		}
		if s > maxSize {
			maxSize = s
		}
		sumSize += s
	}
	fmt.Printf("  chunk sizes  min %d, mean %.0f, max %d bytes\n",
		minSize, float64(sumSize)/float64(x.Chunks()), maxSize)

	// Drift: how far each core's delta-base address moves between
	// consecutive chunk snapshots. A healthy corpus drifts within its
	// footprint; monotone growth reveals an address-space walk (e.g. a
	// converted trace whose addresses were parsed in the wrong radix).
	var (
		maxDrift          uint64
		maxCore, maxChunk int
		sumDrift          float64
		samples           int
	)
	for i := 1; i < x.Chunks(); i++ {
		prev, cur := x.Entry(i-1).LastAddr, x.Entry(i).LastAddr
		for c := range cur {
			d := cur[c] - prev[c]
			if int64(d) < 0 {
				d = -d
			}
			sumDrift += float64(d)
			samples++
			if d > maxDrift {
				maxDrift, maxCore, maxChunk = d, c, i
			}
		}
	}
	if samples == 0 {
		fmt.Printf("  drift        single chunk, no inter-chunk drift\n")
		return
	}
	first := x.Entry(0).LastAddr
	last := x.Entry(x.Chunks() - 1).LastAddr
	var netMax uint64
	netCore := 0
	for c := range last {
		d := last[c] - first[c]
		if int64(d) < 0 {
			d = -d
		}
		if d > netMax {
			netMax, netCore = d, c
		}
	}
	fmt.Printf("  drift        mean %.0f bytes/chunk, max %d (core %d, chunk %d); net max %d (core %d)\n",
		sumDrift/float64(samples), maxDrift, maxCore, maxChunk, netMax, netCore)
}

// upgradeTrace re-encodes src (v1 or v2) into an indexed v2 trace at
// dst, preserving the header. The new trace is built in a temporary
// file and renamed into place only after src has been read and the
// result verified, so dst == src upgrades a trace in place instead of
// truncating the input it is about to read.
func upgradeTrace(src, dst string) {
	f, err := tracefile.Open(src)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	tmp := dst + ".tmp"
	out, err := tracefile.Create(tmp, f.Header())
	if err != nil {
		fatalf("%v", err)
	}
	fail := func(format string, args ...interface{}) {
		os.Remove(tmp)
		fatalf(format, args...)
	}
	for {
		r, ok := f.Next()
		if !ok {
			break
		}
		if err := out.Write(r); err != nil {
			fail("upgrade: %v", err)
		}
	}
	if err := f.Err(); err != nil {
		fail("upgrade: reading %s: %v", src, err)
	}
	if err := out.Close(); err != nil {
		fail("upgrade: %v", err)
	}
	x, err := tracefile.OpenIndexed(tmp)
	if err != nil {
		fail("upgrade: verifying %s: %v", tmp, err)
	}
	refs, chunks := x.Refs(), x.Chunks()
	x.Close()
	if err := os.Rename(tmp, dst); err != nil {
		fail("upgrade: %v", err)
	}
	fmt.Printf("upgraded %s -> %s: v%d, %d records in %d chunks\n",
		src, dst, tracefile.Version, refs, chunks)
}

// parseWindow parses a -window START:N spec ("START:" and "START" mean
// to the end of the trace).
func parseWindow(s string) (start, n uint64) {
	head, tail, hasTail := strings.Cut(s, ":")
	start, err := strconv.ParseUint(head, 10, 64)
	if err != nil {
		fatalf("bad -window %q: %v", s, err)
	}
	if hasTail && tail != "" {
		if n, err = strconv.ParseUint(tail, 10, 64); err != nil {
			fatalf("bad -window %q: %v", s, err)
		}
	}
	return start, n
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

func pct(n, total uint64) string {
	if total == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	ds := fs.String("design", "", "designs to replay: comma-separated P,A,S,R,I or \"all\" (default: the recording design)")
	warm := fs.Int("warm", 0, "warmup references (0 = recorded split)")
	measure := fs.Int("measure", 0, "measured references (0 = recorded split)")
	batches := fs.Int("batches", 1, "parallel replay engines per design")
	shards := fs.Int("shards", 0, "parallel trace-decode workers per engine (0 = one per CPU, 1 = sequential; needs a v2 indexed trace)")
	window := fs.String("window", "", "replay only records START:N of the trace (needs a v2 indexed trace)")
	traceOut := fs.String("trace-out", "", "write the replay's per-stage span trace as JSON to this path")
	timelineOut := fs.String("timeline", "", "record per-design flight timelines and write them here (text; .json for raw JSON; - for stdout)")
	epoch := fs.Int("epoch", 0, "flight-recorder epoch length in measured refs (0 = default 64Ki)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	if *shards == 0 {
		// Auto: shard the decode only when the trace carries an index
		// and there are cores free to run it; v1 traces stay sequential.
		*shards = 1
		if runtime.GOMAXPROCS(0) > 1 {
			if x, err := tracefile.OpenIndexed(path); err == nil {
				x.Close()
				*shards = runtime.GOMAXPROCS(0)
			}
		}
	}

	f, err := tracefile.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	hdr := f.Header()
	f.Close()

	var ids []rnuca.DesignID
	switch {
	case *ds == "" && hdr.Design != "":
		ids = []rnuca.DesignID{parseDesign(hdr.Design)}
	case *ds == "" || strings.EqualFold(*ds, "all"):
		ids = rnuca.AllDesigns()
	default:
		for _, s := range strings.Split(*ds, ",") {
			ids = append(ids, parseDesign(strings.TrimSpace(s)))
		}
	}

	// SIGINT cancels cooperatively: every design's engines stop at
	// their next progress poll, and whatever partial accounting exists
	// is printed instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var spans *obs.Trace
	if *traceOut != "" {
		spans = obs.NewTrace(0)
		ctx = obs.ContextWithTrace(ctx, spans)
	}

	in := rnuca.FromTrace(path).Sharded(*shards)
	if *window != "" {
		start, n := parseWindow(*window)
		in = in.Window(start, n)
	}
	var gauge rnuca.ProgressGauge
	job := rnuca.Job{
		Input:   in,
		Designs: ids,
		Options: rnuca.RunOptions{
			Warm: *warm, Measure: *measure, Batches: *batches,
			Progress: gauge.Observe,
		},
	}
	if *timelineOut != "" {
		job.Options.Timeline = &rnuca.TimelineConfig{Every: *epoch}
	}
	results, err := job.Compare(ctx)
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fatalf("replay: %v", err)
	}
	if interrupted {
		done, total := gauge.Progress()
		fmt.Fprintf(os.Stderr, "replay: interrupted around ref %d of %d per engine; partial results follow\n",
			done, total)
	}

	fmt.Printf("replay of %s (%s, %d cores", path, hdr.Workload, hdr.Cores)
	if *window != "" {
		fmt.Printf(", window %s", *window)
	}
	if *shards > 1 {
		fmt.Printf(", %d decode shards", *shards)
	}
	fmt.Println(")")
	base := results[ids[0]]
	fmt.Printf("  %-6s %-8s %-10s %-9s %s\n", "design", "CPI", "off-chip", "net-msgs", "speedup vs "+string(ids[0]))
	for _, id := range ids {
		r := results[id]
		fmt.Printf("  %-6s %-8.4f %-10d %-9d %+.1f%%\n",
			id, r.CPI(), r.OffChipMisses, r.NetMessages, 100*r.Speedup(base.Result))
	}
	if spans != nil {
		if err := obs.WriteTraceFile(*traceOut, spans); err != nil {
			fatalf("replay: %v", err)
		}
		fmt.Printf("stage breakdown (%s):\n", *traceOut)
		for _, st := range spans.Stages() {
			fmt.Printf("  %-14s %9.4fs x%d\n", st.Stage, st.Seconds, st.Count)
		}
	}
	if *timelineOut != "" {
		if err := writeReplayTimelines(*timelineOut, hdr.Workload, ids, results); err != nil {
			fatalf("replay: %v", err)
		}
	}
	if interrupted {
		os.Exit(130)
	}
}

// writeReplayTimelines writes every replayed design's flight timeline:
// rendered text (one section per design) by default, a design-keyed
// JSON object when path ends in ".json", stdout when path is "-".
func writeReplayTimelines(path, workload string, ids []rnuca.DesignID, results map[rnuca.DesignID]rnuca.Result) error {
	if strings.HasSuffix(path, ".json") {
		byID := make(map[string]*rnuca.Timeline, len(ids))
		for _, id := range ids {
			byID[string(id)] = results[id].Timeline
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(byID); err != nil {
			return err
		}
		return os.WriteFile(path, buf.Bytes(), 0o644)
	}
	var buf bytes.Buffer
	for i, id := range ids {
		if i > 0 {
			fmt.Fprintln(&buf)
		}
		report.RenderTimeline(&buf, fmt.Sprintf("%s/%s", workload, id), results[id].Timeline)
	}
	if path == "-" {
		_, err := os.Stdout.Write(buf.Bytes())
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
