// Command rnuca-trace captures, inspects, indexes, and replays L2
// reference traces in the tracefile format (see internal/tracefile).
//
// Usage:
//
//	rnuca-trace record -workload OLTP-DB2 [-design R] [-warm N]
//	            [-measure N] [-seed S] -o trace.rnt
//	rnuca-trace info trace.rnt
//	rnuca-trace index [-upgrade OUT] trace.rnt
//	rnuca-trace replay [-design R | -design P,A,S,R,I | -design all]
//	            [-warm N] [-measure N] [-batches B] [-shards N]
//	            [-window START:N] trace.rnt
//
// record runs a workload through a design once and tees the consumed
// reference stream to disk. info prints the header and a scan summary.
// index prints the v2 chunk index (or, with -upgrade, rewrites any
// readable trace as an indexed v2 file). replay re-runs any of the five
// designs over the saved trace, in parallel across designs and batches,
// skipping generation cost; a same-design replay reproduces the
// recording run's numbers exactly. On indexed traces, -shards fans
// chunk decoding across workers without changing results, and -window
// replays only the records [START, START+N).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"rnuca"
	"rnuca/internal/tracefile"
	"rnuca/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "index":
		index(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rnuca-trace record -workload NAME [-design R] [-warm N] [-measure N] [-seed S] -o FILE
  rnuca-trace info FILE
  rnuca-trace index [-upgrade OUT] FILE
  rnuca-trace replay [-design IDS|all] [-warm N] [-measure N] [-batches B] [-shards N] [-window START:N] FILE`)
	os.Exit(2)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func parseDesign(s string) rnuca.DesignID {
	id := rnuca.DesignID(strings.ToUpper(s))
	for _, d := range rnuca.AllDesigns() {
		if id == d {
			return id
		}
	}
	fatalf("unknown design %q (P, A, S, R, I)", s)
	panic("unreachable")
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wl := fs.String("workload", "OLTP-DB2", "workload name (see rnuca-sim -list)")
	ds := fs.String("design", "R", "design the recording run uses: P, A, S, R or I")
	warm := fs.Int("warm", 0, "warmup references (0 = default)")
	measure := fs.Int("measure", 0, "measured references (0 = default)")
	seed := fs.Uint64("seed", 0, "workload seed override (0 = workload default)")
	out := fs.String("o", "", "output trace path (required)")
	fs.Parse(args)
	if *out == "" {
		fatalf("record: -o is required")
	}
	w, ok := workload.ByName(*wl)
	if !ok {
		fatalf("unknown workload %q", *wl)
	}
	if *seed != 0 {
		w.Seed = *seed
	}
	id := parseDesign(*ds)

	res, err := rnuca.Record(w, id, rnuca.Options{Warm: *warm, Measure: *measure}, *out)
	if err != nil {
		fatalf("record: %v", err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fatalf("record: %v", err)
	}
	f, err := tracefile.Open(*out)
	if err != nil {
		fatalf("record: %v", err)
	}
	total := f.Header().Refs
	f.Close()
	fmt.Printf("recorded %s under %s: %d measured refs, CPI %.4f\n", w.Name, id, res.Refs, res.CPI())
	fmt.Printf("  %s: %d refs, %d bytes (%.2f bytes/ref)\n",
		*out, total, st.Size(), float64(st.Size())/float64(total))
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	f, err := tracefile.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	hdr := f.Header()
	fmt.Printf("%s: tracefile v%d\n", path, f.Version())
	fmt.Printf("  workload     %s (%d cores, seed %d)\n", hdr.Workload, hdr.Cores, hdr.Seed)
	fmt.Printf("  recorded by  design %s, warm %d + measure %d, off-chip MLP %.2f\n",
		orNone(hdr.Design), hdr.Warm, hdr.Measure, hdr.OffChipMLP)
	if hdr.Refs > 0 {
		fmt.Printf("  declared     %d refs\n", hdr.Refs)
	} else {
		fmt.Printf("  declared     streaming (no ref count)\n")
	}

	var kinds [3]uint64
	var classes [4]uint64
	perCore := map[int]uint64{}
	pages := map[uint64]struct{}{}
	var total uint64
	for {
		r, ok := f.Next()
		if !ok {
			break
		}
		total++
		kinds[r.Kind]++
		classes[r.Class]++
		perCore[r.Core]++
		pages[r.Addr>>13] = struct{}{}
	}
	if err := f.Err(); err != nil {
		fatalf("scan after %d refs: %v", total, err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("  scanned      %d refs, %d distinct 8KB pages, %.2f bytes/ref\n",
		total, len(pages), float64(st.Size())/float64(total))
	fmt.Printf("  kinds        ifetch %s, load %s, store %s\n",
		pct(kinds[0], total), pct(kinds[1], total), pct(kinds[2], total))
	fmt.Printf("  classes      instr %s, private %s, shared %s\n",
		pct(classes[1], total), pct(classes[2], total), pct(classes[3], total))
	cores := make([]int, 0, len(perCore))
	for c := range perCore {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	fmt.Printf("  per-core     ")
	for i, c := range cores {
		if i > 0 {
			fmt.Printf(" ")
		}
		fmt.Printf("%d:%d", c, perCore[c])
	}
	fmt.Println()
}

// index prints a v2 trace's chunk index, or rewrites a trace (any
// readable version) as an indexed v2 file with -upgrade.
func index(args []string) {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	upgrade := fs.String("upgrade", "", "rewrite FILE as an indexed v2 trace at this path")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	if *upgrade != "" {
		upgradeTrace(path, *upgrade)
		return
	}

	x, err := tracefile.OpenIndexed(path)
	if errors.Is(err, tracefile.ErrNoIndex) {
		fatalf("%s has no chunk index; rewrite it with\n  rnuca-trace index -upgrade NEW.rnt %s", path, path)
	}
	if err != nil {
		fatalf("%v", err)
	}
	defer x.Close()
	hdr := x.Header()
	fmt.Printf("%s: %d records in %d chunks (%s, %d cores)\n",
		path, x.Refs(), x.Chunks(), hdr.Workload, hdr.Cores)
	fmt.Printf("  %-6s %-12s %-12s %s\n", "chunk", "offset", "first-rec", "records")
	const maxRows = 48
	for i := 0; i < x.Chunks(); i++ {
		if x.Chunks() > maxRows && i == maxRows-8 {
			fmt.Printf("  ... %d chunks elided ...\n", x.Chunks()-maxRows)
			i = x.Chunks() - 8
		}
		e := x.Entry(i)
		fmt.Printf("  %-6d %-12d %-12d %d\n", i, e.Offset, e.FirstRecord, e.Count)
	}
}

// upgradeTrace re-encodes src (v1 or v2) into an indexed v2 trace at
// dst, preserving the header. The new trace is built in a temporary
// file and renamed into place only after src has been read and the
// result verified, so dst == src upgrades a trace in place instead of
// truncating the input it is about to read.
func upgradeTrace(src, dst string) {
	f, err := tracefile.Open(src)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	tmp := dst + ".tmp"
	out, err := tracefile.Create(tmp, f.Header())
	if err != nil {
		fatalf("%v", err)
	}
	fail := func(format string, args ...interface{}) {
		os.Remove(tmp)
		fatalf(format, args...)
	}
	for {
		r, ok := f.Next()
		if !ok {
			break
		}
		if err := out.Write(r); err != nil {
			fail("upgrade: %v", err)
		}
	}
	if err := f.Err(); err != nil {
		fail("upgrade: reading %s: %v", src, err)
	}
	if err := out.Close(); err != nil {
		fail("upgrade: %v", err)
	}
	x, err := tracefile.OpenIndexed(tmp)
	if err != nil {
		fail("upgrade: verifying %s: %v", tmp, err)
	}
	refs, chunks := x.Refs(), x.Chunks()
	x.Close()
	if err := os.Rename(tmp, dst); err != nil {
		fail("upgrade: %v", err)
	}
	fmt.Printf("upgraded %s -> %s: v%d, %d records in %d chunks\n",
		src, dst, tracefile.Version, refs, chunks)
}

// parseWindow parses a -window START:N spec ("START:" and "START" mean
// to the end of the trace).
func parseWindow(s string) (start, n uint64) {
	head, tail, hasTail := strings.Cut(s, ":")
	start, err := strconv.ParseUint(head, 10, 64)
	if err != nil {
		fatalf("bad -window %q: %v", s, err)
	}
	if hasTail && tail != "" {
		if n, err = strconv.ParseUint(tail, 10, 64); err != nil {
			fatalf("bad -window %q: %v", s, err)
		}
	}
	return start, n
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

func pct(n, total uint64) string {
	if total == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	ds := fs.String("design", "", "designs to replay: comma-separated P,A,S,R,I or \"all\" (default: the recording design)")
	warm := fs.Int("warm", 0, "warmup references (0 = recorded split)")
	measure := fs.Int("measure", 0, "measured references (0 = recorded split)")
	batches := fs.Int("batches", 1, "parallel replay engines per design")
	shards := fs.Int("shards", 0, "parallel trace-decode workers per engine (0 = one per CPU, 1 = sequential; needs a v2 indexed trace)")
	window := fs.String("window", "", "replay only records START:N of the trace (needs a v2 indexed trace)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	if *shards == 0 {
		// Auto: shard the decode only when the trace carries an index
		// and there are cores free to run it; v1 traces stay sequential.
		*shards = 1
		if runtime.GOMAXPROCS(0) > 1 {
			if x, err := tracefile.OpenIndexed(path); err == nil {
				x.Close()
				*shards = runtime.GOMAXPROCS(0)
			}
		}
	}

	f, err := tracefile.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	hdr := f.Header()
	f.Close()

	var ids []rnuca.DesignID
	switch {
	case *ds == "" && hdr.Design != "":
		ids = []rnuca.DesignID{parseDesign(hdr.Design)}
	case *ds == "" || strings.EqualFold(*ds, "all"):
		ids = rnuca.AllDesigns()
	default:
		for _, s := range strings.Split(*ds, ",") {
			ids = append(ids, parseDesign(strings.TrimSpace(s)))
		}
	}

	opt := rnuca.Options{Warm: *warm, Measure: *measure, Batches: *batches, Shards: *shards}
	if *window != "" {
		opt.WindowStart, opt.WindowRefs = parseWindow(*window)
	}
	results, err := rnuca.ReplayCompare(path, ids, opt)
	if err != nil {
		fatalf("replay: %v", err)
	}

	fmt.Printf("replay of %s (%s, %d cores", path, hdr.Workload, hdr.Cores)
	if *window != "" {
		fmt.Printf(", window %s", *window)
	}
	if *shards > 1 {
		fmt.Printf(", %d decode shards", *shards)
	}
	fmt.Println(")")
	base := results[ids[0]]
	fmt.Printf("  %-6s %-8s %-10s %-9s %s\n", "design", "CPI", "off-chip", "net-msgs", "speedup vs "+string(ids[0]))
	for _, id := range ids {
		r := results[id]
		fmt.Printf("  %-6s %-8.4f %-10d %-9d %+.1f%%\n",
			id, r.CPI(), r.OffChipMisses, r.NetMessages, 100*r.Speedup(base.Result))
	}
}
