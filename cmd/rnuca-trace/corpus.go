package main

import (
	"flag"
	"fmt"
	"os"

	"rnuca/internal/corpus"
)

// corpusCmd dispatches the corpus-store subcommands: a thin CLI over
// internal/corpus (see its doc.go for the store layout), the same
// store rnuca-serve serves jobs from.
//
//	rnuca-trace corpus add -dir STORE [-name NAME] FILE...
//	rnuca-trace corpus ls -dir STORE
//	rnuca-trace corpus verify -dir STORE [REF...]   (default: all)
//	rnuca-trace corpus rm -dir STORE NAME...        (drop names; gc collects)
//	rnuca-trace corpus gc -dir STORE [-n]
func corpusCmd(args []string) {
	if len(args) < 1 {
		usage()
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("corpus "+sub, flag.ExitOnError)
	dir := fs.String("dir", "", "corpus store directory (required)")
	name := fs.String("name", "", "reference name for add (default: the trace's workload name)")
	dry := fs.Bool("n", false, "gc: list unreferenced objects without removing them")
	fs.Parse(rest)
	if *dir == "" {
		fatalf("corpus %s: -dir is required", sub)
	}
	st, err := corpus.Open(*dir)
	if err != nil {
		fatalf("%v", err)
	}
	switch sub {
	case "add":
		corpusAdd(st, fs.Args(), *name)
	case "ls":
		corpusLs(st)
	case "verify":
		corpusVerify(st, fs.Args())
	case "rm":
		corpusRm(st, fs.Args())
	case "gc":
		corpusGC(st, *dry)
	default:
		usage()
	}
}

func corpusAdd(st *corpus.Store, files []string, name string) {
	if len(files) == 0 {
		fatalf("corpus add: no trace files")
	}
	if name != "" && len(files) > 1 {
		fatalf("corpus add: -name binds one reference; add %d files without it", len(files))
	}
	for _, f := range files {
		ent, added, err := st.Add(f, name)
		if err != nil {
			fatalf("corpus add %s: %v", f, err)
		}
		verb := "added"
		if !added {
			verb = "already stored"
		}
		fmt.Printf("%s %s -> %s (%s, %d cores, %d refs, %d bytes) as %v\n",
			verb, f, ent.Digest[:12], ent.Workload, ent.Cores, ent.Refs, ent.Bytes, ent.Names)
	}
}

func corpusLs(st *corpus.Store) {
	ents, err := st.List()
	if err != nil {
		fatalf("corpus ls: %v", err)
	}
	if len(ents) == 0 {
		fmt.Println("empty store")
		return
	}
	fmt.Printf("%-14s %-16s %-6s %-10s %-10s %s\n", "digest", "workload", "cores", "refs", "bytes", "names")
	for _, e := range ents {
		fmt.Printf("%-14s %-16s %-6d %-10d %-10d %v\n",
			e.Digest[:12], e.Workload, e.Cores, e.Refs, e.Bytes, e.Names)
	}
}

func corpusVerify(st *corpus.Store, refs []string) {
	if len(refs) == 0 {
		ents, err := st.List()
		if err != nil {
			fatalf("corpus verify: %v", err)
		}
		for _, e := range ents {
			refs = append(refs, e.Digest)
		}
	}
	failed := 0
	for _, ref := range refs {
		ent, err := st.Verify(ref)
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "  FAIL %s: %v\n", ref, err)
			continue
		}
		fmt.Printf("  ok   %s (%s, %d refs in %d chunks)\n", ent.Digest[:12], ent.Workload, ent.Refs, ent.Chunks)
	}
	if failed > 0 {
		fatalf("corpus verify: %d of %d objects failed", failed, len(refs))
	}
}

func corpusRm(st *corpus.Store, names []string) {
	if len(names) == 0 {
		fatalf("corpus rm: no reference names")
	}
	for _, n := range names {
		if err := st.DeleteRef(n); err != nil {
			fatalf("corpus rm %s: %v", n, err)
		}
		fmt.Printf("removed ref %s (objects persist until corpus gc)\n", n)
	}
}

func corpusGC(st *corpus.Store, dry bool) {
	if dry {
		// Dry run: everything listed minus everything referenced.
		ents, err := st.List()
		if err != nil {
			fatalf("corpus gc: %v", err)
		}
		n := 0
		for _, e := range ents {
			if len(e.Names) == 0 {
				fmt.Printf("would remove %s (%s, %d bytes)\n", e.Digest[:12], e.Workload, e.Bytes)
				n++
			}
		}
		fmt.Printf("%d unreferenced object(s)\n", n)
		return
	}
	removed, err := st.GC()
	if err != nil {
		fatalf("corpus gc: %v", err)
	}
	var bytes int64
	for _, e := range removed {
		fmt.Printf("removed %s (%s, %d bytes)\n", e.Digest[:12], e.Workload, e.Bytes)
		bytes += e.Bytes
	}
	fmt.Printf("collected %d object(s), %d bytes\n", len(removed), bytes)
}
