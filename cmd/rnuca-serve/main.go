// Command rnuca-serve runs the rnuca simulation service: an HTTP JSON
// API (internal/serve) over a content-addressed corpus store
// (internal/corpus), with a bounded worker pool and a memoized result
// cache, so repeated replay/compare/figure requests over unchanged
// corpora are answered without simulating.
//
// Usage:
//
//	rnuca-serve [-addr :8091] [-corpus DIR] [-ingest DIR] [-workers N]
//	            [-queue N] [-cache N] [-history N] [-drain 30s] [-pprof]
//
// On SIGTERM or SIGINT the server stops accepting jobs, finishes what
// is queued and running (up to -drain), and exits; a second signal
// cancels running jobs and exits immediately.
//
// -pprof mounts net/http/pprof under /debug/pprof/ on the same
// listener. It is off by default and should stay off on any address
// reachable by untrusted clients: the profile endpoints expose heap
// contents and let anyone drive CPU-costly collections.
//
// A minimal session against a running server — the job body is the
// canonical rnuca.Job JSON:
//
//	curl -sT oltp.rnt 'localhost:8091/v1/corpora?name=oltp'
//	curl -s localhost:8091/v1/jobs -d '{"input":{"corpus":"oltp"},"designs":["R"]}'
//	curl -s localhost:8091/v1/jobs/<id>
//	curl -s localhost:8091/v1/jobs/<id>/trace
//	curl -s localhost:8091/metrics | grep result_cache
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rnuca/internal/corpus"
	"rnuca/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8091", "listen address")
	corpusDir := flag.String("corpus", "", "corpus store directory (empty = no store; replay/convert/figure jobs disabled)")
	ingestDir := flag.String("ingest", "", "directory convert jobs may read foreign traces from (empty = convert jobs disabled)")
	workers := flag.Int("workers", 0, "concurrent simulation jobs (0 = one per CPU)")
	queue := flag.Int("queue", 0, "queued-job bound (0 = default 64)")
	cache := flag.Int("cache", 0, "result-cache entries (0 = default)")
	history := flag.Int("history", 0, "finished jobs retained for /v1/jobs (0 = default 512)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain budget after SIGTERM")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (do not enable on publicly reachable addresses)")
	flag.Parse()

	var store *corpus.Store
	if *corpusDir != "" {
		var err error
		if store, err = corpus.Open(*corpusDir); err != nil {
			fatalf("opening corpus store: %v", err)
		}
	}
	s := serve.New(serve.Config{
		Store:        store,
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		IngestDir:    *ingestDir,
		JobHistory:   *history,
	})
	handler := s.Handler()
	if *withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()

	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("rnuca-serve listening on %s (%d workers", *addr, w)
	if store != nil {
		fmt.Printf(", corpus store %s", store.Root())
	}
	fmt.Println(")")

	select {
	case err := <-serveErr:
		fatalf("serve: %v", err)
	case sig := <-sigs:
		fmt.Printf("rnuca-serve: %v, draining (budget %s; signal again to force)\n", sig, *drain)
	}

	// Drain: stop accepting (both at the listener and the job queue),
	// let in-flight work finish, force-cancel on a second signal or an
	// exhausted budget.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		select {
		case <-sigs:
			fmt.Println("rnuca-serve: forcing shutdown")
			cancel()
		case <-ctx.Done():
		}
	}()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "rnuca-serve: http shutdown: %v\n", err)
	}
	if err := s.Drain(ctx); err != nil {
		fmt.Println("rnuca-serve: drain budget exhausted, canceling running jobs")
		s.Close()
		os.Exit(1)
	}
	s.Close()
	fmt.Println("rnuca-serve: drained cleanly")
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "rnuca-serve: "+format+"\n", args...)
	os.Exit(1)
}
