// Command rnuca-serve runs the rnuca simulation service: an HTTP JSON
// API (internal/serve) over a content-addressed corpus store
// (internal/corpus), with a bounded worker pool and a memoized result
// cache, so repeated replay/compare/figure requests over unchanged
// corpora are answered without simulating.
//
// Usage:
//
//	rnuca-serve [-addr :8091] [-corpus DIR] [-ingest DIR] [-workers N]
//	            [-queue N] [-cache N] [-history N] [-drain 30s]
//	            [-epoch N] [-slo 0] [-log-level info] [-pprof]
//
// On SIGTERM or SIGINT the server stops accepting jobs, finishes what
// is queued and running (up to -drain), and exits; a second signal
// cancels running jobs and exits immediately. /readyz turns 503 the
// moment the drain begins (while /healthz stays 200), so a load
// balancer stops routing to the terminating instance.
//
// Job-lifecycle events are logged as one key=value line each, every
// line carrying the job's job_id, so `grep job_id=<id>` reconstructs
// one job's story from a busy server's stream. -log-level gates
// verbosity (debug, info, warn, error).
//
// -epoch sets the flight recorder's epoch length in measured
// references (default 64Ki); every simulation cell records a
// per-epoch timeline served at /v1/jobs/{id}/timeline.
//
// -slo sets the submit-to-terminal job-latency target (for example
// -slo 2s). GET /v1/stats then reports per-kind attainment — windowed
// over the last minute and cumulative since start — and the
// rnuca_jobs_slo_breached_total{kind} counter burns on every done or
// failed job that exceeded the target. 0 (the default) disables SLO
// accounting; latency quantiles are tracked regardless and served on
// /v1/stats and as rnuca_*_quantile_seconds gauges on /metrics.
// Submissions refused for queue pressure return 429 with Retry-After
// (and count in rnuca_jobs_throttled_total); a draining server
// returns 503 without Retry-After.
//
// -pprof mounts net/http/pprof under /debug/pprof/ on the same
// listener. It is off by default and should stay off on any address
// reachable by untrusted clients: the profile endpoints expose heap
// contents and let anyone drive CPU-costly collections.
//
// A minimal session against a running server — the job body is the
// canonical rnuca.Job JSON:
//
//	curl -sT oltp.rnt 'localhost:8091/v1/corpora?name=oltp'
//	curl -s localhost:8091/v1/jobs -d '{"input":{"corpus":"oltp"},"designs":["R"]}'
//	curl -s localhost:8091/v1/jobs/<id>
//	curl -s localhost:8091/v1/jobs/<id>/trace
//	curl -s localhost:8091/metrics | grep result_cache
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rnuca/internal/corpus"
	"rnuca/internal/obs/log"
	"rnuca/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8091", "listen address")
	corpusDir := flag.String("corpus", "", "corpus store directory (empty = no store; replay/convert/figure jobs disabled)")
	ingestDir := flag.String("ingest", "", "directory convert jobs may read foreign traces from (empty = convert jobs disabled)")
	workers := flag.Int("workers", 0, "concurrent simulation jobs (0 = one per CPU)")
	queue := flag.Int("queue", 0, "queued-job bound (0 = default 64)")
	cache := flag.Int("cache", 0, "result-cache entries (0 = default)")
	history := flag.Int("history", 0, "finished jobs retained for /v1/jobs (0 = default 512)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain budget after SIGTERM")
	epoch := flag.Int("epoch", 0, "flight-recorder epoch length in measured refs (0 = default 64Ki)")
	slo := flag.Duration("slo", 0, "submit-to-terminal job-latency SLO target (0 = SLO accounting off)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (do not enable on publicly reachable addresses)")
	flag.Parse()

	level, err := log.ParseLevel(*logLevel)
	if err != nil {
		fatalf("%v", err)
	}
	lg := log.New(os.Stderr, level)

	var store *corpus.Store
	if *corpusDir != "" {
		var err error
		if store, err = corpus.Open(*corpusDir); err != nil {
			fatalf("opening corpus store: %v", err)
		}
	}
	s := serve.New(serve.Config{
		Store:        store,
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		IngestDir:    *ingestDir,
		JobHistory:   *history,
		EpochRefs:    *epoch,
		Logger:       lg,
		SLO:          *slo,
	})
	lg.Instrument(s.Registry())
	handler := s.Handler()
	if *withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()

	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	kv := []any{"addr", *addr, "workers", w}
	if store != nil {
		kv = append(kv, "corpus", store.Root())
	}
	lg.Info("rnuca-serve listening", kv...)

	select {
	case err := <-serveErr:
		fatalf("serve: %v", err)
	case sig := <-sigs:
		lg.Info("draining", "signal", sig.String(), "budget", *drain)
	}

	// Drain: stop accepting (both at the listener and the job queue),
	// let in-flight work finish, force-cancel on a second signal or an
	// exhausted budget.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		select {
		case <-sigs:
			lg.Warn("forcing shutdown")
			cancel()
		case <-ctx.Done():
		}
	}()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		lg.Error("http shutdown", "err", err)
	}
	if err := s.Drain(ctx); err != nil {
		lg.Error("drain budget exhausted, canceling running jobs")
		s.Close()
		os.Exit(1)
	}
	s.Close()
	lg.Info("drained cleanly")
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "rnuca-serve: "+format+"\n", args...)
	os.Exit(1)
}
