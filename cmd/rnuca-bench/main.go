// Command rnuca-bench runs the repository's Go benchmarks and distills
// them into a stable-schema JSON trajectory file (BENCH_6.json), so CI
// can archive one small artifact per run and fail when the simulation
// engine slows down.
//
// Usage:
//
//	rnuca-bench [-pkg rnuca] [-bench REGEXP] [-benchtime T] [-count N]
//	            [-out BENCH_6.json] [-baseline FILE] [-threshold 0.15]
//	            [-gate '^BenchmarkEngine'] [-dry JSONFILE]
//	rnuca-bench -compare OLD.json NEW.json
//
// The tool shells out to `go test -run '^$' -bench REGEXP -benchmem
// -json` and parses the test2json stream, so it needs the go toolchain
// on PATH but nothing else. When -baseline names an existing file, every
// benchmark present in both runs is compared: a ns/op increase beyond
// -threshold on a benchmark matching -gate fails the run (exit 1);
// non-gated slowdowns are reported as warnings only. -dry skips the
// benchmark run and loads current results from a JSON file instead
// (testing the gate itself, or re-judging an archived run).
//
// -compare runs no benchmarks: it joins two archived trajectory files
// into the full delta table — every benchmark in either file, with
// ns/op and allocs/op on both sides and the relative change;
// informational only, always exit 0.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
)

func main() {
	pkg := flag.String("pkg", "rnuca", "package whose benchmarks run")
	bench := flag.String("bench", ".", "benchmark selection regexp (go test -bench)")
	benchtime := flag.String("benchtime", "", "per-benchmark time or iteration budget (go test -benchtime)")
	count := flag.Int("count", 1, "runs per benchmark; the minimum ns/op of the runs is kept")
	out := flag.String("out", "BENCH_6.json", "trajectory file to write")
	baseline := flag.String("baseline", "", "previous trajectory file to compare against (missing file = no comparison)")
	threshold := flag.Float64("threshold", 0.15, "relative ns/op increase tolerated before a gated benchmark fails")
	gate := flag.String("gate", "^BenchmarkEngine", "regexp of benchmark names whose regressions fail the run")
	dry := flag.String("dry", "", "load current results from this JSON file instead of running benchmarks")
	compare := flag.Bool("compare", false, "compare two trajectory files (args: OLD.json NEW.json) and print the full delta table")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatalf("-compare needs exactly two arguments: OLD.json NEW.json")
		}
		old, err := loadBenchFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		cur, err := loadBenchFile(flag.Arg(1))
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%s (%s) vs %s (%s)\n", flag.Arg(0), old.Go, flag.Arg(1), cur.Go)
		RenderDeltas(os.Stdout, CompareAll(old.Bench, cur.Bench))
		return
	}

	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fatalf("bad -gate: %v", err)
	}

	var cur BenchFile
	if *dry != "" {
		cur, err = loadBenchFile(*dry)
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		results, err := runBenchmarks(*pkg, *bench, *benchtime, *count)
		if err != nil {
			fatalf("%v", err)
		}
		if len(results) == 0 {
			fatalf("no benchmarks matched %q in %s", *bench, *pkg)
		}
		cur = BenchFile{Schema: benchSchema, Go: runtime.Version(), Bench: results}
	}

	var prev BenchFile
	havePrev := false
	if *baseline != "" {
		switch p, err := loadBenchFile(*baseline); {
		case err == nil:
			prev, havePrev = p, true
		case os.IsNotExist(err):
			fmt.Printf("no baseline at %s; writing a fresh trajectory\n", *baseline)
		default:
			fatalf("%v", err)
		}
	}

	if *out != "" {
		if err := writeBenchFile(*out, cur); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s (%d benchmarks, %s)\n", *out, len(cur.Bench), cur.Go)
	}

	if !havePrev {
		return
	}
	deltas := Compare(prev.Bench, cur.Bench, *threshold, gateRe)
	failed := false
	for _, d := range deltas {
		tag := "warn"
		if d.Gated {
			tag = "FAIL"
			failed = true
		}
		fmt.Printf("%s  %-40s %12.1f -> %12.1f ns/op (%+.1f%%)\n",
			tag, d.Name, d.Old, d.New, 100*d.Delta)
	}
	if len(deltas) == 0 {
		fmt.Printf("no regressions beyond %.0f%% against %s\n", 100**threshold, *baseline)
	}
	if failed {
		fatalf("gated benchmark regression beyond %.0f%%", 100**threshold)
	}
}

// runBenchmarks shells out to go test and distills the test2json
// stream. count > 1 repeats each benchmark and keeps the fastest run,
// the standard way to shave scheduler noise off a regression gate.
func runBenchmarks(pkg, bench, benchtime string, count int) ([]BenchResult, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem", "-json"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	if count > 1 {
		args = append(args, "-count", fmt.Sprint(count))
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting go test: %w", err)
	}
	parser := newStreamParser()
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action  string `json:"Action"`
			Package string `json:"Package"`
			Test    string `json:"Test"`
			Output  string `json:"Output"`
		}
		if json.Unmarshal(sc.Bytes(), &ev) != nil || ev.Action != "output" {
			continue
		}
		parser.Feed(ev.Package+"\x00"+ev.Test, ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return parser.Results, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "rnuca-bench: "+format+"\n", args...)
	os.Exit(1)
}
