package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := ParseBenchLine("BenchmarkEngineRNUCA-8   \t 1201\t   997315 ns/op\t  2048 B/op\t      12 allocs/op\n")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkEngineRNUCA" {
		t.Fatalf("name = %q (GOMAXPROCS suffix must be stripped)", r.Name)
	}
	if r.NsPerOp != 997315 || r.BytesPerOp != 2048 || r.AllocsPerOp != 12 {
		t.Fatalf("parsed %+v", r)
	}

	r, ok = ParseBenchLine("BenchmarkThroughput-4 500 2500000 ns/op 64.21 MB/s")
	if !ok || r.MBPerS != 64.21 {
		t.Fatalf("MB/s parse: %+v ok=%v", r, ok)
	}

	for _, bad := range []string{
		"PASS",
		"ok  \trnuca\t42.1s",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"goos: linux",
		"BenchmarkNoUnit-8 100 200", // iterations but no ns/op
	} {
		if _, ok := ParseBenchLine(bad); ok {
			t.Fatalf("%q must not parse", bad)
		}
	}
}

func TestMergeResultKeepsFastest(t *testing.T) {
	rs := MergeResult(nil, BenchResult{Name: "BenchmarkX", NsPerOp: 100, AllocsPerOp: 5})
	rs = MergeResult(rs, BenchResult{Name: "BenchmarkX", NsPerOp: 80, AllocsPerOp: 4})
	rs = MergeResult(rs, BenchResult{Name: "BenchmarkX", NsPerOp: 120, AllocsPerOp: 3})
	if len(rs) != 1 || rs[0].NsPerOp != 80 || rs[0].AllocsPerOp != 4 {
		t.Fatalf("merged %+v", rs)
	}
}

// The regression gate: a slowed engine benchmark beyond the threshold
// fails, a slowed non-gated benchmark only warns, and noise inside the
// threshold passes silently.
func TestCompareGate(t *testing.T) {
	gate := regexp.MustCompile("^BenchmarkEngine")
	old := []BenchResult{
		{Name: "BenchmarkEngineRNUCA", NsPerOp: 1000},
		{Name: "BenchmarkEnginePrivate", NsPerOp: 1000},
		{Name: "BenchmarkFigure12Speedup", NsPerOp: 1000},
		{Name: "BenchmarkRemoved", NsPerOp: 1000},
	}
	cur := []BenchResult{
		{Name: "BenchmarkEngineRNUCA", NsPerOp: 1400},     // gated regression
		{Name: "BenchmarkEnginePrivate", NsPerOp: 1100},   // within threshold
		{Name: "BenchmarkFigure12Speedup", NsPerOp: 1500}, // non-gated
		{Name: "BenchmarkAdded", NsPerOp: 9999},           // no baseline
	}
	ds := Compare(old, cur, 0.15, gate)
	if len(ds) != 2 {
		t.Fatalf("deltas = %+v", ds)
	}
	// Sorted by severity: the 50% figure slowdown before the 40% engine one.
	if ds[0].Name != "BenchmarkFigure12Speedup" || ds[0].Gated {
		t.Fatalf("ds[0] = %+v", ds[0])
	}
	if ds[1].Name != "BenchmarkEngineRNUCA" || !ds[1].Gated {
		t.Fatalf("ds[1] = %+v", ds[1])
	}
	if ds[1].Delta < 0.39 || ds[1].Delta > 0.41 {
		t.Fatalf("delta = %v", ds[1].Delta)
	}
}

func TestCompareNoRegression(t *testing.T) {
	old := []BenchResult{{Name: "BenchmarkEngineRNUCA", NsPerOp: 1000}}
	cur := []BenchResult{{Name: "BenchmarkEngineRNUCA", NsPerOp: 900}}
	if ds := Compare(old, cur, 0.15, regexp.MustCompile("^BenchmarkEngine")); len(ds) != 0 {
		t.Fatalf("faster run reported as regression: %+v", ds)
	}
}

// Round-trip the trajectory file and reject foreign schemas, so a
// future schema bump cannot be silently compared against old data.
func TestBenchFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")
	in := BenchFile{Schema: benchSchema, Go: "go1.24.0", Bench: []BenchResult{
		{Name: "BenchmarkB", NsPerOp: 2},
		{Name: "BenchmarkA", NsPerOp: 1, BytesPerOp: 3, AllocsPerOp: 4, MBPerS: 5},
	}}
	if err := writeBenchFile(path, in); err != nil {
		t.Fatal(err)
	}
	got, err := loadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Bench) != 2 || got.Bench[0].Name != "BenchmarkA" {
		t.Fatalf("round trip not sorted: %+v", got.Bench)
	}
	if got.Bench[0].MBPerS != 5 || got.Go != "go1.24.0" {
		t.Fatalf("round trip dropped fields: %+v", got)
	}

	if err := os.WriteFile(path, []byte(`{"schema":99,"bench":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBenchFile(path); err == nil {
		t.Fatal("foreign schema must be rejected")
	}
}

// CompareAll is the -compare table: one row per benchmark in either
// trajectory, sorted by name, nothing filtered.
func TestCompareAll(t *testing.T) {
	old := []BenchResult{
		{Name: "BenchmarkEngineRNUCA", NsPerOp: 1000, AllocsPerOp: 12},
		{Name: "BenchmarkRemoved", NsPerOp: 500},
	}
	cur := []BenchResult{
		{Name: "BenchmarkEngineRNUCA", NsPerOp: 1200, AllocsPerOp: 10},
		{Name: "BenchmarkAdded", NsPerOp: 300},
	}
	rows := CompareAll(old, cur)
	if len(rows) != 3 {
		t.Fatalf("rows = %+v, want 3", rows)
	}
	if rows[0].Name != "BenchmarkAdded" || rows[0].InOld || !rows[0].InNew {
		t.Fatalf("rows[0] = %+v", rows[0])
	}
	if rows[1].Name != "BenchmarkEngineRNUCA" || !rows[1].InOld || !rows[1].InNew {
		t.Fatalf("rows[1] = %+v", rows[1])
	}
	if d := rows[1].NsDelta(); d < 0.19 || d > 0.21 {
		t.Fatalf("NsDelta = %v, want ~0.20", d)
	}
	if rows[2].Name != "BenchmarkRemoved" || !rows[2].InOld || rows[2].InNew {
		t.Fatalf("rows[2] = %+v", rows[2])
	}
	// One-sided rows report no delta rather than a fake ±100%.
	if rows[0].NsDelta() != 0 || rows[2].NsDelta() != 0 {
		t.Fatalf("one-sided deltas: added=%v removed=%v", rows[0].NsDelta(), rows[2].NsDelta())
	}
}

func TestRenderDeltas(t *testing.T) {
	rows := CompareAll(
		[]BenchResult{
			{Name: "BenchmarkEngineRNUCA", NsPerOp: 1000, AllocsPerOp: 12},
			{Name: "BenchmarkRemoved", NsPerOp: 500, AllocsPerOp: 1},
		},
		[]BenchResult{
			{Name: "BenchmarkEngineRNUCA", NsPerOp: 1200, AllocsPerOp: 10},
			{Name: "BenchmarkAdded", NsPerOp: 300, AllocsPerOp: 2},
		})
	var buf strings.Builder
	RenderDeltas(&buf, rows)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("output has %d lines, want header + 3 rows:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "benchmark") || !strings.Contains(lines[0], "delta") {
		t.Fatalf("header = %q", lines[0])
	}
	for _, want := range []struct{ name, marker string }{
		{"BenchmarkAdded", "new"},
		{"BenchmarkEngineRNUCA", "+20.0%"},
		{"BenchmarkRemoved", "removed"},
	} {
		found := false
		for _, l := range lines[1:] {
			if strings.Contains(l, want.name) && strings.Contains(l, want.marker) {
				found = true
			}
		}
		if !found {
			t.Fatalf("no row with %q and %q in:\n%s", want.name, want.marker, out)
		}
	}
}

// test2json flushes a benchmark's name ("BenchmarkX \t", no newline)
// when it starts and the measurements when it finishes, so one result
// line spans multiple output events. Feed must reassemble them.
func TestStreamParserReassemblesSplitLines(t *testing.T) {
	p := newStreamParser()
	p.Feed("rnuca\x00BenchmarkEngineRNUCA", "=== RUN   BenchmarkEngineRNUCA\n")
	p.Feed("rnuca\x00BenchmarkEngineRNUCA", "BenchmarkEngineRNUCA\n")
	p.Feed("rnuca\x00BenchmarkEngineRNUCA", "BenchmarkEngineRNUCA \t")
	p.Feed("rnuca\x00BenchmarkEngineShared", "BenchmarkEngineShared \t")
	p.Feed("rnuca\x00BenchmarkEngineRNUCA", "   54583\t      1285 ns/op\n")
	p.Feed("rnuca\x00BenchmarkEngineShared", "   60000\t      1100 ns/op\n")
	p.Feed("rnuca\x00", "PASS\n")
	if len(p.Results) != 2 {
		t.Fatalf("parsed %+v, want 2 results", p.Results)
	}
	if p.Results[0].Name != "BenchmarkEngineRNUCA" || p.Results[0].NsPerOp != 1285 {
		t.Fatalf("results[0] = %+v", p.Results[0])
	}
	if p.Results[1].Name != "BenchmarkEngineShared" || p.Results[1].NsPerOp != 1100 {
		t.Fatalf("results[1] = %+v", p.Results[1])
	}
}
