package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchSchema versions the trajectory file; bump only when a field
// changes meaning, so dashboards can trust old artifacts.
const benchSchema = 1

// BenchResult is one benchmark's distilled measurements.
type BenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// BenchFile is the on-disk trajectory: one record per benchmark,
// sorted by name, stamped with the writing toolchain.
type BenchFile struct {
	Schema int           `json:"schema"`
	Go     string        `json:"go"`
	Bench  []BenchResult `json:"bench"`
}

// Delta is one benchmark whose ns/op grew beyond the threshold.
type Delta struct {
	Name     string
	Old, New float64
	Delta    float64 // (new-old)/old
	Gated    bool
}

// ParseBenchLine distills one `go test -bench` result line, e.g.
//
//	BenchmarkEngineRNUCA-8   1000  1234 ns/op  56 B/op  7 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped so trajectories from
// machines with different core counts stay comparable.
func ParseBenchLine(line string) (BenchResult, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return BenchResult{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(f[1]); err != nil {
		return BenchResult{}, false
	}
	r := BenchResult{Name: name}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return BenchResult{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp, seen = v, true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		case "MB/s":
			r.MBPerS = v
		}
	}
	return r, seen
}

// MergeResult folds a parsed result into the set, keeping the fastest
// ns/op when -count repeats a benchmark (and that run's companion
// stats, so the record stays internally consistent).
func MergeResult(results []BenchResult, r BenchResult) []BenchResult {
	for i, have := range results {
		if have.Name == r.Name {
			if r.NsPerOp < have.NsPerOp {
				results[i] = r
			}
			return results
		}
	}
	return append(results, r)
}

// Compare reports every benchmark present in both runs whose ns/op
// grew by more than threshold; entries matching gate are the ones a CI
// run fails on.
func Compare(old, cur []BenchResult, threshold float64, gate *regexp.Regexp) []Delta {
	prev := make(map[string]BenchResult, len(old))
	for _, r := range old {
		prev[r.Name] = r
	}
	var out []Delta
	for _, r := range cur {
		p, ok := prev[r.Name]
		if !ok || p.NsPerOp <= 0 {
			continue
		}
		d := (r.NsPerOp - p.NsPerOp) / p.NsPerOp
		if d <= threshold {
			continue
		}
		out = append(out, Delta{
			Name: r.Name, Old: p.NsPerOp, New: r.NsPerOp,
			Delta: d, Gated: gate != nil && gate.MatchString(r.Name),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Delta > out[j].Delta })
	return out
}

// FullDelta is one row of the -compare table: a benchmark's
// measurements in two trajectories. A benchmark absent on one side
// still gets a row (InOld/InNew mark which).
type FullDelta struct {
	Name         string
	InOld, InNew bool
	Old, New     BenchResult
}

// NsDelta is the relative ns/op change, (new-old)/old.
func (d FullDelta) NsDelta() float64 {
	if !d.InOld || !d.InNew || d.Old.NsPerOp <= 0 {
		return 0
	}
	return (d.New.NsPerOp - d.Old.NsPerOp) / d.Old.NsPerOp
}

// CompareAll joins two trajectories into the full delta table: one
// row per benchmark present in either, sorted by name. Unlike
// Compare, nothing is filtered — improvements, no-changes, and
// added/removed benchmarks all appear.
func CompareAll(old, cur []BenchResult) []FullDelta {
	rows := map[string]*FullDelta{}
	for _, r := range old {
		rows[r.Name] = &FullDelta{Name: r.Name, InOld: true, Old: r}
	}
	for _, r := range cur {
		d := rows[r.Name]
		if d == nil {
			d = &FullDelta{Name: r.Name}
			rows[r.Name] = d
		}
		d.InNew = true
		d.New = r
	}
	out := make([]FullDelta, 0, len(rows))
	for _, d := range rows {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RenderDeltas writes the -compare table: ns/op on both sides with
// the relative change, plus allocation deltas when either side
// reported them.
func RenderDeltas(w io.Writer, rows []FullDelta) {
	fmt.Fprintf(w, "%-44s %14s %14s %9s %14s %14s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs/op", "new allocs/op")
	for _, d := range rows {
		name := d.Name
		switch {
		case !d.InOld:
			fmt.Fprintf(w, "%-44s %14s %14.1f %9s %14s %14.0f\n",
				name, "-", d.New.NsPerOp, "new", "-", d.New.AllocsPerOp)
		case !d.InNew:
			fmt.Fprintf(w, "%-44s %14.1f %14s %9s %14.0f %14s\n",
				name, d.Old.NsPerOp, "-", "removed", d.Old.AllocsPerOp, "-")
		default:
			fmt.Fprintf(w, "%-44s %14.1f %14.1f %+8.1f%% %14.0f %14.0f\n",
				name, d.Old.NsPerOp, d.New.NsPerOp, 100*d.NsDelta(),
				d.Old.AllocsPerOp, d.New.AllocsPerOp)
		}
	}
}

// streamParser reassembles benchmark result lines from test2json
// output events. The events split lines mid-way: a benchmark's name is
// flushed when it starts ("BenchmarkX \t", no newline) and its
// measurements arrive in a later event, so output must be buffered per
// test until a newline completes the line.
type streamParser struct {
	bufs    map[string]string
	Results []BenchResult
}

func newStreamParser() *streamParser { return &streamParser{bufs: map[string]string{}} }

// Feed appends one event's output for a test, parsing any lines it
// completes.
func (p *streamParser) Feed(test, output string) {
	p.bufs[test] += output
	for {
		i := strings.IndexByte(p.bufs[test], '\n')
		if i < 0 {
			return
		}
		line := p.bufs[test][:i]
		p.bufs[test] = p.bufs[test][i+1:]
		if r, ok := ParseBenchLine(line); ok {
			p.Results = MergeResult(p.Results, r)
		}
	}
}

// loadBenchFile reads and sanity-checks a trajectory file.
func loadBenchFile(path string) (BenchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return BenchFile{}, err
	}
	var f BenchFile
	if err := json.Unmarshal(b, &f); err != nil {
		return BenchFile{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	if f.Schema != benchSchema {
		return BenchFile{}, fmt.Errorf("%s: schema %d, want %d", path, f.Schema, benchSchema)
	}
	return f, nil
}

// writeBenchFile writes a trajectory file, sorted by benchmark name so
// diffs between runs are stable.
func writeBenchFile(path string, f BenchFile) error {
	sort.Slice(f.Bench, func(i, j int) bool { return f.Bench[i].Name < f.Bench[j].Name })
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
