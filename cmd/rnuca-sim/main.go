// Command rnuca-sim runs a single workload x design simulation and prints
// the CPI stack, miss counts, and classification accuracy.
//
// Usage:
//
//	rnuca-sim -workload OLTP-DB2 -design R [-warm N] [-measure N]
//	          [-clusters 4] [-batches 1] [-trace-out spans.json]
//	          [-timeline FILE] [-epoch N]
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// SIGINT (Ctrl-C) cancels the simulation cooperatively: the engine
// stops at its next progress poll and the partial result measured so
// far is printed before exit. -trace-out records the run's per-stage
// span trace (internal/obs) as JSON and prints the timing breakdown;
// -cpuprofile and -memprofile write runtime/pprof profiles for the
// whole run.
//
// -timeline records a flight-recorder timeline (per-core CPI, bank
// pressure, classification churn, link utilization per epoch of
// -epoch measured refs) and writes it to FILE — rendered text, or the
// raw timeline JSON when FILE ends in .json. "-" renders to stdout.
// Recording is pure observation: the measured result is bit-identical
// with or without it.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"rnuca"
	"rnuca/internal/obs"
	"rnuca/internal/report"
	"rnuca/internal/sim"
	"rnuca/internal/workload"
)

func main() {
	// Exit codes funnel through run so the profile- and trace-writing
	// defers always flush (os.Exit would skip them).
	os.Exit(run())
}

func run() int {
	wl := flag.String("workload", "OLTP-DB2", "workload name (see -list)")
	ds := flag.String("design", "R", "design: P, A, S, R or I")
	warm := flag.Int("warm", 0, "warmup references (0 = default)")
	measure := flag.Int("measure", 0, "measured references (0 = default)")
	clusters := flag.Int("clusters", 0, "R-NUCA instruction cluster size override")
	batches := flag.Int("batches", 1, "independently seeded batches (CI when >1)")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	list := flag.Bool("list", false, "list workloads and exit")
	traceOut := flag.String("trace-out", "", "write the run's per-stage span trace as JSON to this path")
	timelineOut := flag.String("timeline", "", "record a flight timeline and write it here (text; .json for raw JSON; - for stdout)")
	epoch := flag.Int("epoch", 0, "flight-recorder epoch length in measured refs (0 = default 64Ki)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	flag.Parse()

	if *list {
		for _, w := range append(rnuca.Primary(), rnuca.Extended()...) {
			fmt.Printf("%-12s %s, %d cores\n", w.Name, w.Category, w.Cores)
		}
		return 0
	}
	w, ok := workload.ByName(*wl)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (try -list)\n", *wl)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rnuca-sim: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rnuca-sim: cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rnuca-sim: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is current
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rnuca-sim: memprofile: %v\n", err)
			}
		}()
	}

	var spans *obs.Trace
	if *traceOut != "" {
		spans = obs.NewTrace(0)
		ctx = obs.ContextWithTrace(ctx, spans)
	}

	var gauge rnuca.ProgressGauge
	job := rnuca.Job{
		Input:   rnuca.FromWorkload(w),
		Designs: []rnuca.DesignID{rnuca.DesignID(strings.ToUpper(*ds))},
		Options: rnuca.RunOptions{
			Warm: *warm, Measure: *measure, Batches: *batches,
			InstrClusterSize: *clusters,
			Progress:         gauge.Observe,
		},
	}
	if *timelineOut != "" {
		job.Options.Timeline = &rnuca.TimelineConfig{Every: *epoch}
	}
	id := job.Designs[0]

	r, err := job.Run(ctx)
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fmt.Fprintf(os.Stderr, "rnuca-sim: %v\n", err)
		return 2
	}
	if spans != nil {
		if werr := obs.WriteTraceFile(*traceOut, spans); werr != nil {
			fmt.Fprintf(os.Stderr, "rnuca-sim: %v\n", werr)
			return 1
		}
	}
	if *timelineOut != "" {
		label := fmt.Sprintf("%s/%s", w.Name, id)
		if werr := report.WriteTimelineFile(*timelineOut, label, r.Timeline); werr != nil {
			fmt.Fprintf(os.Stderr, "rnuca-sim: %v\n", werr)
			return 1
		}
	}
	if interrupted {
		// The engine stopped at its progress poll; report how far it
		// got and print the partial accounting instead of dying
		// mid-write.
		done, total := gauge.Progress()
		fmt.Fprintf(os.Stderr, "rnuca-sim: interrupted at %d of %d refs; partial result follows\n",
			done, total)
	}

	if *asJSON {
		out := map[string]interface{}{
			"workload": w.Name,
			"design":   string(id),
			"cpi":      r.CPI(),
			"cpiStack": map[string]float64{
				"busy":    r.CPIStack[sim.BucketBusy],
				"l1toL1":  r.CPIStack[sim.BucketL1toL1],
				"l2":      r.CPIStack[sim.BucketL2],
				"l2Coh":   r.CPIStack[sim.BucketL2Coh],
				"offChip": r.CPIStack[sim.BucketOffChip],
				"other":   r.CPIStack[sim.BucketOther],
				"reclass": r.CPIStack[sim.BucketReclass],
			},
			"offChipMisses": r.OffChipMisses,
			"refs":          r.Refs,
			"netMessages":   r.NetMessages,
			"netFlitHops":   r.NetFlitHops,
		}
		if interrupted {
			out["partial"] = true
		}
		if r.ClassifiedAccesses > 0 {
			out["misclassifiedFrac"] = float64(r.MisclassifiedAccesses) / float64(r.ClassifiedAccesses)
			out["mixedPageFrac"] = float64(r.MixedPageAccesses) / float64(r.Refs)
		}
		if len(r.Timing) > 0 {
			out["timing"] = r.Timing
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if interrupted {
			return 130
		}
		return 0
	}

	fmt.Printf("%s on %s (%d cores)\n", id, w.Name, w.Cores)
	fmt.Printf("  CPI           %.4f", r.CPI())
	if *batches > 1 {
		fmt.Printf("  (mean %.4f ± %.4f over %d batches)", r.CPIMean, r.CPICI, *batches)
	}
	fmt.Println()
	for _, b := range []sim.Bucket{sim.BucketBusy, sim.BucketL1toL1, sim.BucketL2,
		sim.BucketL2Coh, sim.BucketOffChip, sim.BucketOther, sim.BucketReclass} {
		fmt.Printf("  %-18s %.4f\n", b.String(), r.CPIStack[b])
	}
	if r.Refs > 0 {
		fmt.Printf("  off-chip misses    %d (%.2f%% of %d refs)\n",
			r.OffChipMisses, 100*float64(r.OffChipMisses)/float64(r.Refs), r.Refs)
	}
	if r.ClassifiedAccesses > 0 {
		fmt.Printf("  misclassified      %.3f%% of accesses\n",
			100*float64(r.MisclassifiedAccesses)/float64(r.ClassifiedAccesses))
		fmt.Printf("  multi-class pages  %.1f%% of accesses\n",
			100*float64(r.MixedPageAccesses)/float64(r.Refs))
	}
	if len(r.Timing) > 0 {
		fmt.Printf("  stage timing (%s):\n", *traceOut)
		for _, st := range r.Timing {
			fmt.Printf("    %-16s %9.4fs x%d\n", st.Stage, st.Seconds, st.Count)
		}
	}
	if interrupted {
		return 130
	}
	return 0
}
