// DSS scan study: decision-support queries stream multi-gigabyte tables
// through the cache (§3.3.1: "DSS workloads scan multi-gigabyte database
// tables ... exceeding any reasonable L2 capacity"). This example shows
// why spilling private data to neighbors cannot help balanced server
// workloads — every slice is under identical pressure — and how R-NUCA's
// local placement of private data still wins on latency.
//
// Run with:
//
//	go run ./examples/dss-scan
package main

import (
	"context"
	"fmt"
	"log"

	"rnuca"
	"rnuca/internal/cache"
	"rnuca/internal/sim"
)

func main() {
	ctx := context.Background()
	opts := rnuca.RunOptions{Warm: 80_000, Measure: 160_000}
	designs := []rnuca.DesignID{rnuca.DesignPrivate, rnuca.DesignShared, rnuca.DesignRNUCA}

	fmt.Println("TPC-H query 6: pure scan, 48MB per-core private footprint")
	fmt.Println()
	fmt.Printf("%-8s %10s %14s %14s %12s\n", "design", "CPI", "priv L2 CPI", "priv off CPI", "misses")
	cmp, err := rnuca.Job{
		Input: rnuca.FromWorkload(rnuca.DSSQry6()), Designs: designs, Options: opts,
	}.Compare(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range designs {
		r := cmp[id]
		fmt.Printf("%-8s %10.3f %14.4f %14.4f %12d\n", id, r.CPI(),
			r.ClassCycles[cache.ClassPrivate][sim.BucketL2],
			r.ClassCycles[cache.ClassPrivate][sim.BucketOffChip],
			r.OffChipMisses)
	}

	fmt.Println()
	fmt.Println("Scan intensity sweep (DSS-Qry6, varying streaming fraction):")
	fmt.Printf("%-10s %10s %10s %10s\n", "seq frac", "P", "S", "R")
	for _, seq := range []float64{0.25, 0.5, 0.85} {
		w := rnuca.DSSQry6()
		w.PrivateSeqFrac = seq
		cmp, err := rnuca.Job{
			Input: rnuca.FromWorkload(w), Designs: designs, Options: opts,
		}.Compare(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.2f %10.3f %10.3f %10.3f\n", seq,
			cmp[rnuca.DesignPrivate].CPI(), cmp[rnuca.DesignShared].CPI(), cmp[rnuca.DesignRNUCA].CPI())
	}
	fmt.Println()
	fmt.Println("R-NUCA serves scans from the local slice at private-design latency")
	fmt.Println("while keeping the shared design's aggregate capacity for the rest.")
}
