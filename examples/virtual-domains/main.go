// Virtual domains: the §4.4/§5.5 extension. Fixed-boundary clusters
// partition a large CMP into isolated rectangular domains, each running
// its own workload with its own interleaving — "the seamless
// decomposition of a large-scale multicore processor into virtual
// domains, each one with its own subset of the cache" (§5.5). This
// example partitions the 4x4 torus into four 2x2 domains and shows that
// placement traffic never crosses a domain boundary.
//
// Run with:
//
//	go run ./examples/virtual-domains
package main

import (
	"fmt"

	"rnuca/internal/noc"
	placement "rnuca/internal/rnuca"
)

func main() {
	topo := noc.NewFoldedTorus2D(4, 4)
	domains, err := placement.Partition(topo, 2, 2)
	if err != nil {
		panic(err)
	}

	fmt.Println("4x4 torus partitioned into four 2x2 virtual domains:")
	for i, d := range domains {
		fmt.Printf("  domain %d: tiles %v\n", i, d.Tiles())
	}

	// Interleave a synthetic address stream within each domain and verify
	// isolation: every placement stays inside its own rectangle.
	fmt.Println("\nPlacement audit over 4096 addresses per domain:")
	for i, d := range domains {
		inDomain := 0
		maxHops := 0
		for a := uint64(0); a < 4096; a++ {
			slice := d.SliceFor(a<<16, 16)
			if d.Contains(slice) {
				inDomain++
			}
			for _, t := range d.Tiles() {
				if h := topo.Hops(t, slice); h > maxHops {
					maxHops = h
				}
			}
		}
		fmt.Printf("  domain %d: %d/4096 placements in-domain, worst member-to-slice distance %d hops\n",
			i, inDomain, maxHops)
	}

	// Within a domain, a core still gets rotational-style locality: the
	// domain's slices are all within two hops of any member.
	fmt.Println("\nDomains give consolidation isolation (Marty&Hill-style virtual")
	fmt.Println("hierarchies) while keeping R-NUCA's single-probe lookup — the")
	fmt.Println("indexing stays a pure function of the address and domain shape.")
}
