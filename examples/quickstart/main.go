// Quickstart: simulate one workload on R-NUCA and print the CPI stack.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"rnuca"
	"rnuca/internal/sim"
)

func main() {
	ctx := context.Background()

	// Pick a workload (TPC-C on DB2, the paper's flagship) and run it on
	// the R-NUCA design with default Table 1 parameters. A Job pairs an
	// Input (where references come from) with the designs to evaluate;
	// runs are deterministic: same job = same result.
	w := rnuca.OLTPDB2()
	job := rnuca.Job{
		Input:   rnuca.FromWorkload(w),
		Designs: []rnuca.DesignID{rnuca.DesignRNUCA},
		Options: rnuca.RunOptions{Warm: 60_000, Measure: 120_000},
	}

	res, err := job.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("R-NUCA on %s (%d cores)\n\n", w.Name, w.Cores)
	fmt.Printf("  CPI: %.3f over %d references\n\n", res.CPI(), res.Refs)
	for _, b := range []sim.Bucket{
		sim.BucketBusy, sim.BucketL1toL1, sim.BucketL2, sim.BucketL2Coh,
		sim.BucketOffChip, sim.BucketOther, sim.BucketReclass,
	} {
		fmt.Printf("  %-18s %6.3f\n", b, res.CPIStack[b])
	}
	fmt.Printf("\n  off-chip misses: %d\n", res.OffChipMisses)
	fmt.Printf("  misclassified accesses: %.2f%% (paper: <0.75%%)\n",
		100*float64(res.MisclassifiedAccesses)/float64(res.ClassifiedAccesses))

	// Compare against the competing designs, Figure 12 style: the same
	// job with more designs.
	job.Designs = []rnuca.DesignID{rnuca.DesignPrivate, rnuca.DesignShared, rnuca.DesignRNUCA}
	cmp, err := job.Compare(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSpeedup over the private design:")
	base := cmp[rnuca.DesignPrivate]
	for _, id := range []rnuca.DesignID{rnuca.DesignShared, rnuca.DesignRNUCA} {
		fmt.Printf("  %s: %+.1f%%\n", id, 100*cmp[id].Speedup(base.Result))
	}
}
