// Cluster tuning: the Figure 11 trade-off as a runnable study. Sweeping
// R-NUCA's instruction cluster size trades access latency (small clusters
// keep replicas close) against off-chip misses (size-1 replicates the
// whole instruction working set in every slice and thrashes; §3.3.2).
//
// Run with:
//
//	go run ./examples/cluster-tuning
package main

import (
	"context"
	"fmt"
	"log"

	"rnuca"
	"rnuca/internal/cache"
	"rnuca/internal/report"
	"rnuca/internal/sim"
)

func main() {
	ctx := context.Background()
	w := rnuca.Apache() // the suite's largest instruction footprint
	fmt.Printf("Instruction-cluster sweep on %s (instr footprint %dKB, slice 1MB)\n\n",
		w.Name, w.InstrFootprint>>10)

	fmt.Printf("%-6s %8s %12s %12s %10s   %s\n",
		"size", "CPI", "instr L2", "instr off", "misses", "total CPI")
	var cpis []float64
	for _, size := range []int{1, 2, 4, 8, 16} {
		job := rnuca.Job{
			Input:   rnuca.FromWorkload(w),
			Designs: []rnuca.DesignID{rnuca.DesignRNUCA},
			Options: rnuca.RunOptions{Warm: 80_000, Measure: 160_000, InstrClusterSize: size},
		}
		r, err := job.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		cpis = append(cpis, r.CPI())
		fmt.Printf("%-6d %8.3f %12.4f %12.4f %10d   %s\n",
			size, r.CPI(),
			r.ClassCycles[cache.ClassInstruction][sim.BucketL2],
			r.ClassCycles[cache.ClassInstruction][sim.BucketOffChip],
			r.OffChipMisses,
			report.Bar(r.CPI(), maxOf(cpis), 40))
	}
	fmt.Println()
	fmt.Println("Size-1 pays off-chip misses for full per-slice replication;")
	fmt.Println("size-16 pays cross-chip hit latency; size-4 balances both,")
	fmt.Println("matching the paper's choice for these configurations.")
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
