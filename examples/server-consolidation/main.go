// Server consolidation: the scenario that motivates the paper's
// introduction. A 16-core CMP runs the full server suite (OLTP on two
// database engines, a web server, three decision-support queries); for
// each workload the example finds the best static design and shows that
// R-NUCA tracks it without per-workload retuning — the paper's
// "performance stability across workloads" claim (§5.4).
//
// Run with:
//
//	go run ./examples/server-consolidation
package main

import (
	"context"
	"fmt"
	"log"

	"rnuca"
)

func main() {
	ctx := context.Background()
	opts := rnuca.RunOptions{Warm: 80_000, Measure: 160_000}
	suite := []rnuca.Workload{
		rnuca.OLTPDB2(), rnuca.OLTPOracle(), rnuca.Apache(),
		rnuca.DSSQry6(), rnuca.DSSQry8(), rnuca.DSSQry13(),
	}

	fmt.Printf("%-12s %8s %8s %8s   %-14s %s\n",
		"workload", "P", "S", "R", "best static", "R vs best static")
	var worst float64 = 1e9
	for _, w := range suite {
		cmp, err := rnuca.Job{
			Input:   rnuca.FromWorkload(w),
			Designs: []rnuca.DesignID{rnuca.DesignPrivate, rnuca.DesignShared, rnuca.DesignRNUCA},
			Options: opts,
		}.Compare(ctx)
		if err != nil {
			log.Fatal(err)
		}
		p, s, r := cmp[rnuca.DesignPrivate], cmp[rnuca.DesignShared], cmp[rnuca.DesignRNUCA]

		best, bestName := p, "private"
		if s.CPI() < best.CPI() {
			best, bestName = s, "shared"
		}
		margin := 100 * r.Speedup(best.Result)
		if margin < worst {
			worst = margin
		}
		fmt.Printf("%-12s %8.3f %8.3f %8.3f   %-14s %+.1f%%\n",
			w.Name, p.CPI(), s.CPI(), r.CPI(), bestName, margin)
	}
	fmt.Printf("\nR-NUCA vs the per-workload best static design, worst case: %+.1f%%\n", worst)
	fmt.Println("(the paper's claim: R-NUCA matches the best design for each workload)")
}
