module rnuca

go 1.21
